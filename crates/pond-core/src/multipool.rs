//! The sharded multi-pool fleet: pool groups, pod topologies, and a
//! group-aware scheduler.
//!
//! Pond evaluates one pool per 8–64 sockets, but a real fleet is many pods,
//! and the DRAM savings depend on how hosts are *sharded* across pools, not
//! just on the pool size. This module shards a fleet into N pool groups —
//! each owning its own [`PondControlPlane`] (hosts + pool + QoS state) — on
//! top of a [`PoolGroupTopology`] built from `cxl_hw::topology`: symmetric
//! pods (every host reaches exactly its home pool) or Octopus-style sparse
//! rings (each pod's hosts also reach the next pod's pool).
//!
//! A [`GroupScheduler`] chooses a home group per arriving VM; placement then
//! runs a fixed fallback ladder over the home pod's *reachable* groups:
//!
//! 1. **Pooled, home group** — the full Figure 13 prediction pipeline.
//! 2. **Borrowed neighbour** (only with [`MultiPoolConfig::borrowing`] on) —
//!    *split ownership*: the VM's host stays in the home pod, but its pool
//!    slices are leased from a reachable lender pod's pool
//!    ([`PondControlPlane::lend`] on the lender,
//!    [`PondControlPlane::commit_borrowed`] on the home plane). The lease
//!    consumes a real CXL port on the lender's EMCs through the synthetic
//!    cross-pod port id
//!    ([`PoolGroupTopology::borrow_port_host`]), and each ring hop adds the
//!    switch-stage latency [`PoolGroupTopology::borrow_added_latency`]
//!    models.
//! 3. **Pooled, reachable neighbours** — the re-homing fallback: the VM
//!    moves to the neighbouring pod entirely (its hosts and its pool).
//! 4. **All-local, reachable groups in the same order** — the last rung,
//!    mirroring the production scheduler's all-local fallback; it runs only
//!    when `ControlPlaneConfig::fallback_all_local` is on, exactly like the
//!    single-pool replay.
//! 5. Rejection.
//!
//! Split ownership changes the failure semantics: an EMC failure in a
//! lender pod now degrades VMs homed in *other* pods (their leases are
//! stripped via [`PondControlPlane::strip_borrowed`] and the VMs evacuate
//! through their own pod's ladder), and a graceful decommission must recall
//! the slices the draining pod *lent* ([`PondControlPlane::borrowers_of`])
//! before the pod can be struck off. Per-group conservation gains a `lent`
//! term (`free + offlining + pinned + lent == live`), and the fleet-level
//! deep check cross-foots every lender's ledger against the leases its
//! borrowers actually hold. With borrowing disabled the replay runs the
//! historical ladder instruction for instruction and stays bit-identical
//! to the pinned goldens.
//!
//! The pool *lifecycle* is a first-class part of the same replay: EMC
//! failures can heal ([`DrillKind::EmcWithRepair`] replaces every failed
//! device one MTTR later), and an explicit [`LifecyclePlan`] schedules
//! repairs, graceful group decommissions, and live expansions as timeline
//! events. A decommissioned group *drains* — every VM migrates out through
//! the arrival ladder at the usual 50 ms/GiB copy cost, and the group is
//! struck off only after its last pending release lands — in contrast to a
//! failure, which kills whatever cannot be re-homed. [`RebalanceSpec`] adds
//! proactive QoS-cadence rebalancing: pool-starved groups shed VMs to their
//! ring neighbour before pressure turns into rejections, with a
//! feasibility pre-check so a rebalance can never kill.
//!
//! All groups run on the *single* time-ordered [`EventQueue`]: one merged
//! stream of
//! arrivals, departures, per-group release completions, reconfiguration
//! completions, lifecycle events, and QoS ticks. After every event,
//! per-group pool-accounting
//! conservation is debug-asserted
//! ([`PondControlPlane::assert_pool_conserved`]) along with the fleet-wide
//! invariant ([`assert_fleet_conserved`]): summed over groups, every slice
//! is exactly one of free, pinned, or mid-offlining.
//!
//! With a single group, [`run_multipool_fleet`] reproduces
//! [`run_fleet`](crate::fleet::run_fleet) bit for bit — the ladder above
//! degenerates to exactly the control plane's internal fallback — which the
//! integration suite checks outcome-for-outcome.

use crate::arena::{LiveVmArena, NO_GROUP};
use crate::control_plane::{
    BorrowedReclaim, ControlPlaneConfig, PlacementSummary, PondControlPlane,
};
use crate::error::PondError;
use crate::fleet::{
    ceil_secs, checked_decrement, track_peaks_touched, FleetConfig, FleetOutcome, ReplayAccounting,
    ScheduledEvent,
};
use crate::policy::PondPolicy;
use cluster_sim::event::{Event, EventQueue};
use cluster_sim::source::{ArrivalSource, TraceCursor, TraceHeader};
use cluster_sim::sweep;
use cluster_sim::trace::{ClusterTrace, VmRequest};
use cxl_hw::pool::GroupState;
use cxl_hw::topology::{PodStyle, PoolGroupTopology};
use cxl_hw::units::{Bytes, EmcId};
use hypervisor_sim::reconfig::ReconfigurationEngine;
use hypervisor_sim::vm::VmId;
use pond_metrics::{
    DecisionTrace, FallbackReason, GroupSample, LadderRung, LifecycleOpKind, LifecycleTrace,
    NullObserver, QosPassTrace, ReplayObserver,
};
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// A per-arrival snapshot of one pool group, offered to [`GroupScheduler`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupView {
    /// Free pool-buffer capacity the group could online right now.
    pub pool_free: Bytes,
    /// Largest free local DRAM on any host of the group.
    pub most_free_host: Bytes,
    /// Free local DRAM of the *tightest* host that still fits the arriving
    /// VM's full memory, if any host does.
    pub tightest_feasible: Option<Bytes>,
    /// VMs currently running in the group.
    pub running_vms: usize,
}

impl GroupView {
    fn of(plane: &PondControlPlane, request: &VmRequest) -> GroupView {
        GroupView {
            pool_free: plane.pool().available(),
            most_free_host: plane.most_free_host().map_or(Bytes::ZERO, |(_, free)| free),
            tightest_feasible: plane.tightest_feasible_host(request.memory).map(|(_, free)| free),
            running_vms: plane.running_vms(),
        }
    }
}

/// Chooses the home pool group for every arriving VM.
///
/// Implementations may keep state (round-robin cursors, learned load);
/// [`run_multipool_fleet`] calls [`GroupScheduler::choose`] once per
/// arrival, in event order, so stateful schedulers see a deterministic
/// sequence.
pub trait GroupScheduler {
    /// Picks the home group for `request`. `views` holds one snapshot per
    /// group; the returned index must be within `views`.
    fn choose(&mut self, request: &VmRequest, views: &[GroupView]) -> usize;

    /// Human-readable scheduler name for reports.
    fn name(&self) -> &'static str;
}

/// Spreads arrivals across groups in rotation, ignoring load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinScheduler {
    next: usize,
}

impl GroupScheduler for RoundRobinScheduler {
    fn choose(&mut self, _request: &VmRequest, views: &[GroupView]) -> usize {
        let group = self.next % views.len();
        self.next = self.next.wrapping_add(1);
        group
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Sends every VM to the group whose pool buffer has the most free capacity
/// (ties: lowest group index) — pool-pressure balancing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MostFreePoolScheduler;

impl GroupScheduler for MostFreePoolScheduler {
    fn choose(&mut self, _request: &VmRequest, views: &[GroupView]) -> usize {
        views
            .iter()
            .enumerate()
            .min_by_key(|(i, v)| (std::cmp::Reverse(v.pool_free.as_u64()), *i))
            .map(|(i, _)| i)
            .expect("at least one group")
    }

    fn name(&self) -> &'static str {
        "most-free-pool"
    }
}

/// Locality/tightest-fit: packs VMs into the group whose tightest feasible
/// host leaves the least DRAM slack (mirroring the host-level best-fit
/// preference), keeping loosely loaded pods free for large VMs. Groups with
/// no host fitting the VM's full memory are considered last, by most free
/// host DRAM.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TightestFitScheduler;

impl GroupScheduler for TightestFitScheduler {
    fn choose(&mut self, _request: &VmRequest, views: &[GroupView]) -> usize {
        views
            .iter()
            .enumerate()
            .min_by_key(|(i, v)| match v.tightest_feasible {
                // Feasible groups first, tightest fit first, lowest index.
                Some(free) => (0u8, free.as_u64(), *i),
                // Infeasible groups: the most headroom is the least bad.
                None => (1u8, u64::MAX - v.most_free_host.as_u64(), *i),
            })
            .map(|(i, _)| i)
            .expect("at least one group")
    }

    fn name(&self) -> &'static str {
        "tightest-fit"
    }
}

/// The built-in group-scheduling strategies, selectable from configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupSchedulerKind {
    /// [`RoundRobinScheduler`].
    RoundRobin,
    /// [`MostFreePoolScheduler`].
    MostFreePool,
    /// [`TightestFitScheduler`].
    TightestFit,
}

impl GroupSchedulerKind {
    /// All built-in strategies, in sweep order.
    pub const ALL: [GroupSchedulerKind; 3] = [
        GroupSchedulerKind::RoundRobin,
        GroupSchedulerKind::MostFreePool,
        GroupSchedulerKind::TightestFit,
    ];

    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn GroupScheduler> {
        match self {
            GroupSchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::default()),
            GroupSchedulerKind::MostFreePool => Box::new(MostFreePoolScheduler),
            GroupSchedulerKind::TightestFit => Box::new(TightestFitScheduler),
        }
    }

    /// The strategy's report name (delegates to the instance, so each
    /// name literal exists in exactly one place).
    pub fn name(self) -> &'static str {
        match self {
            GroupSchedulerKind::RoundRobin => RoundRobinScheduler::default().name(),
            GroupSchedulerKind::MostFreePool => MostFreePoolScheduler.name(),
            GroupSchedulerKind::TightestFit => TightestFitScheduler.name(),
        }
    }
}

/// What kind of component a failure drill kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DrillKind {
    /// External Memory Controllers — the paper's headline blast-radius case
    /// (§4.1): one dead device takes down every slice behind it.
    Emc,
    /// EMC failures with repair: every failed device is replaced
    /// `mttr_secs` after it dies ([`Event::EmcRepair`]), restoring its
    /// capacity to the pool mid-replay (§4.2's operational reality). The
    /// failure schedule is *identical* to [`DrillKind::Emc`] at the same
    /// seed — repairs are planned from the failures, with no extra random
    /// draws — so the two kinds isolate exactly the effect of healing.
    EmcWithRepair {
        /// Mean time to repair: seconds between a device's failure and its
        /// replacement coming online.
        mttr_secs: u64,
    },
}

impl DrillKind {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DrillKind::Emc => "emc",
            DrillKind::EmcWithRepair { .. } => "emc+repair",
        }
    }
}

/// A failure drill injected into a multi-pool replay: component failures
/// become first-class timeline events ([`Event::EmcFailure`]) that the
/// evacuation planner must survive.
///
/// The drill plan is generated once, deterministically from the spec alone
/// (a Poisson process over the trace duration, thinned per group/EMC), so
/// the same spec over the same trace yields the same failures — serial and
/// parallel sweeps stay bit-identical. A rate of zero is exactly a no-drill
/// replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureDrillSpec {
    /// Expected component failures per simulated day across the whole
    /// fleet. Drastically higher than production failure rates on purpose:
    /// a drill compresses years of fleet time into one trace.
    pub rate_per_day: f64,
    /// The component class the drill kills.
    pub kind: DrillKind,
    /// Seed of the drill's own RNG (independent from the model seed, so the
    /// same workload can be drilled with different failure patterns).
    pub seed: u64,
}

/// One planned failure: which EMC of which pool group dies, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlannedEmcFailure {
    time: u64,
    group: usize,
    emc: EmcId,
}

/// Expands a drill spec into the concrete failure plan for one topology.
/// Exponential inter-arrival times (a Poisson process at `rate_per_day`),
/// each failure striking a uniformly chosen group and one of its EMCs.
fn plan_drill(
    spec: &FailureDrillSpec,
    duration: u64,
    topology: &PoolGroupTopology,
) -> Vec<PlannedEmcFailure> {
    let mut plan = Vec::new();
    if spec.rate_per_day <= 0.0 || !spec.rate_per_day.is_finite() || duration == 0 {
        return plan;
    }
    // Both kinds share the failure schedule; `EmcWithRepair`'s repairs are
    // derived from it afterwards without consuming any random draws, so the
    // failures line up exactly across the two kinds at the same seed.
    match spec.kind {
        DrillKind::Emc | DrillKind::EmcWithRepair { .. } => {}
    }
    let mut rng = Pcg64::seed_from_u64(spec.seed);
    let per_sec = spec.rate_per_day / 86_400.0;
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen();
        // `1 - u` keeps the logarithm's argument in (0, 1].
        t += -(1.0 - u).ln() / per_sec;
        if t >= duration as f64 {
            return plan;
        }
        let group = rng.gen_range(0..topology.group_count());
        let emc = rng.gen_range(0..topology.pool(group).emc_configs().len() as u16);
        plan.push(PlannedEmcFailure { time: t as u64, group, emc: EmcId(emc) });
    }
}

/// One scheduled pool-lifecycle operation (§4.2's operational reality as
/// timeline events): a device replacement, a graceful pod decommission, or
/// a live capacity expansion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LifecycleOp {
    /// Replace a failed EMC: its capacity rejoins `group`'s pool empty
    /// ([`Event::EmcRepair`]). A no-op on a healthy device.
    RepairEmc {
        /// The pool group owning the device.
        group: usize,
        /// The device to repair.
        emc: EmcId,
    },
    /// Gracefully decommission `group` ([`Event::GroupDecommission`]): the
    /// group stops accepting placements, every running VM is *drained* to a
    /// surviving group through the arrival ladder (killed only when no rung
    /// anywhere holds it), and the group reaches `Decommissioned` once its
    /// last pending slice release has completed — never before.
    DecommissionGroup {
        /// The pool group to drain.
        group: usize,
    },
    /// Attach a fresh EMC of `capacity` to `group`'s pool live
    /// ([`Event::GroupExpansion`]). Expanding a `Decommissioned` group
    /// re-onlines it — the replacement-pod case.
    ExpandGroup {
        /// The pool group to grow.
        group: usize,
        /// Capacity of the new device.
        capacity: Bytes,
    },
}

/// One lifecycle operation at one timeline instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleEvent {
    /// Seconds from trace start.
    pub time: u64,
    /// The operation.
    pub op: LifecycleOp,
}

/// An explicit schedule of lifecycle operations injected into a replay.
/// An empty plan reproduces the plain replay bit for bit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LifecyclePlan {
    /// The scheduled operations, in any order (the event queue sorts them).
    pub events: Vec<LifecycleEvent>,
}

/// Proactive QoS-cadence rebalancing: at every snapshot tick, each
/// pool-starved group migrates a few VMs to its ring neighbour *before*
/// pressure turns into rejections. Placements are pre-checked against the
/// destination, so a rebalance move can never kill a VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RebalanceSpec {
    /// A group is starved when its free pool drops below this fraction of
    /// its live pool capacity.
    pub starved_fraction: f64,
    /// Most VMs moved out of one starved group per snapshot pass.
    pub max_moves_per_pass: u32,
}

/// One planned repair: which EMC of which group comes back, and when.
/// Merged from the drill's MTTR echo and explicit [`LifecycleOp::RepairEmc`]
/// events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlannedEmcRepair {
    time: u64,
    group: usize,
    emc: EmcId,
}

/// One planned live expansion: the new device's capacity and home group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PlannedExpansion {
    group: usize,
    capacity: Bytes,
}

/// Configuration of a sharded multi-pool fleet replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPoolConfig {
    /// Pod style: symmetric shards or Octopus-style overlapping rings.
    pub pod: PodStyle,
    /// Number of pool groups the fleet is sharded into.
    pub groups: u16,
    /// Fleet-wide control-plane template: `hosts` is the total host count
    /// and `pool_capacity` the total pool DRAM; both are split into
    /// contiguous pod shares differing by at most one host / one 1 GiB
    /// slice (earlier pods get the remainder), so the modeled totals are
    /// identical across group counts. Policy, QoS, and latency knobs apply
    /// to every group.
    pub control: ControlPlaneConfig,
    /// The group-scheduling strategy.
    pub scheduler: GroupSchedulerKind,
    /// Seconds between QoS passes (`0` disables monitoring).
    pub qos_interval: u64,
    /// Seed for model training and telemetry sampling.
    pub seed: u64,
    /// Optional failure drill: EMC failures injected as timeline events,
    /// answered by cross-group VM migration. `None` (and a zero-rate spec)
    /// reproduces the drill-free replay bit for bit.
    pub drill: Option<FailureDrillSpec>,
    /// Optional explicit lifecycle schedule: repairs, decommissions, and
    /// expansions as timeline events. `None` (and an empty plan) reproduces
    /// the plain replay bit for bit.
    pub lifecycle: Option<LifecyclePlan>,
    /// Optional proactive rebalancing at QoS cadence. `None` reproduces the
    /// plain replay bit for bit.
    pub rebalance: Option<RebalanceSpec>,
    /// Enables the cross-pod BorrowedNeighbour ladder rung: a home pod whose
    /// pool is exhausted may lease slices from a reachable lender pod
    /// instead of re-homing the VM. `false` (the default) reproduces the
    /// slices-follow-host replay bit for bit.
    #[serde(default)]
    pub borrowing: bool,
}

impl MultiPoolConfig {
    /// A multi-pool fleet sized to a trace, mirroring
    /// [`FleetConfig::for_trace`] and then sharding it into `groups` pods:
    /// with `groups == 1` the derived per-group control plane is *identical*
    /// to the single-pool fleet's, which is what makes the bit-for-bit
    /// equivalence test possible.
    pub fn for_trace(
        trace: &ClusterTrace,
        pod: PodStyle,
        groups: u16,
        pool_fraction: f64,
        scheduler: GroupSchedulerKind,
        seed: u64,
    ) -> Self {
        Self::for_header(&TraceHeader::of_trace(trace), pod, groups, pool_fraction, scheduler, seed)
    }

    /// [`MultiPoolConfig::for_trace`] from a [`TraceHeader`] alone, so
    /// streaming replays can size the sharded fleet without materializing
    /// any requests.
    pub fn for_header(
        header: &TraceHeader,
        pod: PodStyle,
        groups: u16,
        pool_fraction: f64,
        scheduler: GroupSchedulerKind,
        seed: u64,
    ) -> Self {
        let fleet = FleetConfig::for_header(header, pool_fraction, seed);
        MultiPoolConfig {
            pod,
            groups,
            control: fleet.control,
            scheduler,
            qos_interval: fleet.qos_interval,
            seed,
            drill: None,
            lifecycle: None,
            rebalance: None,
            borrowing: false,
        }
    }

    /// Returns the configuration with a failure drill attached.
    pub fn with_drill(mut self, drill: FailureDrillSpec) -> Self {
        self.drill = Some(drill);
        self
    }

    /// Returns the configuration with an explicit lifecycle plan attached.
    pub fn with_lifecycle(mut self, lifecycle: LifecyclePlan) -> Self {
        self.lifecycle = Some(lifecycle);
        self
    }

    /// Returns the configuration with proactive rebalancing attached.
    pub fn with_rebalance(mut self, rebalance: RebalanceSpec) -> Self {
        self.rebalance = Some(rebalance);
        self
    }

    /// Returns the configuration with cross-pod slice borrowing switched
    /// on or off.
    pub fn with_borrowing(mut self, borrowing: bool) -> Self {
        self.borrowing = borrowing;
        self
    }

    /// Builds the [`PoolGroupTopology`] this configuration describes.
    ///
    /// # Errors
    ///
    /// Propagates invalid shapes (zero groups, more groups than hosts or
    /// than pool slices, unsupported per-group pool size) from the hardware
    /// layer.
    pub fn group_topology(&self) -> Result<PoolGroupTopology, PondError> {
        Ok(PoolGroupTopology::new(
            self.pod,
            self.groups,
            self.control.hosts,
            self.control.pool_sockets,
            self.control.pool_capacity,
        )?)
    }
}

/// Aggregated results of one multi-pool fleet replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPoolOutcome {
    /// Fleet-wide aggregate. Summable fields are sums over groups;
    /// `pool_peak` is the sum of per-group pool peaks (each pool provisions
    /// for its own peak); `qos_passes`, `releases_completed`, and
    /// `reconfig_completions` count events on the shared queue. With one
    /// group this equals [`run_fleet`](crate::fleet::run_fleet)'s outcome
    /// bit for bit.
    pub fleet: FleetOutcome,
    /// Per-group breakdown, indexed by group.
    pub per_group: Vec<FleetOutcome>,
    /// Placements that landed outside their scheduler-chosen home group
    /// (the cross-group fallback, pooled or all-local).
    pub cross_group_placements: u64,
    /// Name of the scheduling strategy that ran.
    pub scheduler: String,
    /// The pod style that ran.
    pub pod: PodStyle,
}

/// Checks the fleet-wide slice-conservation invariant across all groups:
/// summed over planes, `free + offlining + pinned + lent == live capacity`,
/// on top of each plane's own conservation assert. The denominator is the
/// *live* capacity so the invariant keeps holding through EMC failures — a
/// dead device's slices leave the ledger together with its capacity, and
/// anything else (a leaked pending release, a record still pinning dead
/// slices, a stranded lease) still trips the assert. Lent slices sit in the
/// *lender's* ledger: the borrower's mirror counter is bookkeeping only, so
/// no slice is ever double-counted across the fleet.
///
/// # Panics
///
/// Panics when any per-group or the fleet-wide invariant is violated.
pub fn assert_fleet_conserved(planes: &[PondControlPlane]) {
    let mut accounted = Bytes::ZERO;
    let mut live = Bytes::ZERO;
    for plane in planes {
        plane.assert_pool_conserved();
        accounted += plane.pool().available()
            + plane.pool().pending_release()
            + plane.pinned_pool()
            + plane.lent_pool();
        live += plane.pool().pool().live_capacity();
    }
    assert_eq!(accounted, live, "fleet-wide slice conservation across {} groups", planes.len());
}

/// The deep variant of [`assert_fleet_conserved`]: recomputes every group's
/// incremental counters from its running VMs and hosts
/// ([`PondControlPlane::assert_pool_conserved_full`]) before re-checking the
/// fleet-wide sum. O(VMs + hosts + slices) per group, so the replay runs it
/// only at snapshot ticks and at end of replay in debug builds; the O(groups)
/// [`assert_fleet_conserved`] still runs after every event.
///
/// # Panics
///
/// Panics when any recomputed counter disagrees with its incremental twin or
/// any conservation invariant is violated.
pub fn assert_fleet_conserved_full(planes: &[PondControlPlane]) {
    for plane in planes {
        plane.assert_pool_conserved_full();
    }
    // The cross-lender ledger: every slice a lender counts as lent must be
    // held by exactly one borrower's lease, fleet-wide — a lease dropped
    // without [`PondControlPlane::release_lent`], or released twice, breaks
    // this identity even while each plane's local invariant still holds.
    for (lender, plane) in planes.iter().enumerate() {
        let borrowed: u64 = planes.iter().map(|p| p.borrowed_from(lender)).sum();
        assert_eq!(
            Bytes::from_gib(borrowed),
            plane.lent_pool(),
            "group {lender}: lent slices must equal the leases borrowers hold"
        );
    }
    assert_fleet_conserved(planes);
}

/// FIFO attribution of shared-queue events back to the group that scheduled
/// them: release and reconfiguration events carry only a time, so each
/// schedule records `(time → group)` and each pop consumes the front entry
/// at that time.
#[derive(Debug, Default)]
struct EventAttribution {
    by_time: BTreeMap<u64, VecDeque<usize>>,
}

impl EventAttribution {
    fn push(&mut self, time: u64, group: usize) {
        self.by_time.entry(time).or_default().push_back(group);
    }

    fn pop(&mut self, time: u64) -> usize {
        let queue = self.by_time.get_mut(&time).expect("event was scheduled with attribution");
        let group = queue.pop_front().expect("one attribution per scheduled event");
        if queue.is_empty() {
            self.by_time.remove(&time);
        }
        group
    }
}

/// Cross-pod borrowing context for [`place_on_ladder`]'s BorrowedNeighbour
/// rung. `None` at the call site disables the rung and reproduces the
/// historical slices-follow-host ladder instruction for instruction.
struct BorrowRung<'a> {
    topology: &'a PoolGroupTopology,
    /// Lender-side async releases started by a borrow that could not be
    /// committed: the caller must schedule each entry as a `Release` event
    /// attributed to the lender group (the ladder has no queue access).
    orphan_releases: &'a mut Vec<(usize, u64)>,
}

/// The BorrowedNeighbour rung: keep the VM on a home-pod host and lease its
/// pool share from the first reachable lender with capacity. The home plane
/// plans its pooled share exactly as the failed pooled-home attempt did
/// (the decision path is pure, so re-planning is bit-stable), the lease is
/// attributed to the home pod's synthetic cross-pod port on the lender, and
/// the commit pins the VM on the home host with the borrowed slices.
///
/// # Errors
///
/// Propagates any error other than the expected placement failures.
fn try_borrow_rung(
    planes: &mut [PondControlPlane],
    order: &[usize],
    request: &VmRequest,
    now: Duration,
    ctx: &mut BorrowRung<'_>,
) -> Result<Option<(usize, PlacementSummary)>, PondError> {
    let home = order[0];
    let plan = planes[home].plan_pooled(request, now)?;
    // Borrowing only helps when the home plane *wants* pool slices and has
    // a host for the local share: a zero-pool plan or no feasible host would
    // fail identically with borrowed slices.
    if plan.pool.is_zero() || !planes[home].has_feasible_host(request.memory - plan.pool) {
        return Ok(None);
    }
    // The host the commit below will pick. Nothing mutates the home plane
    // between this probe and the commit (only lender planes are touched),
    // so the most-free host is stable across the gap.
    let Some((host, _)) = planes[home].most_free_host() else {
        return Ok(None);
    };
    let port_host = ctx.topology.borrow_port_host(home, host as u16);
    for &lender in &order[1..] {
        // Only a pod wired to the home pod can lend it slices; `order` may
        // spill beyond the home pod's reach (the decommission drain ladder).
        if lender == home || ctx.topology.borrow_hops(home, lender).is_none() {
            continue;
        }
        let lease = match planes[lender].lend(lender, port_host, plan.pool, now) {
            Ok(lease) => lease,
            Err(PondError::PoolExhausted { .. }) => continue,
            Err(other) => return Err(other),
        };
        match planes[home].commit_borrowed(request, plan, lease, now) {
            Ok(summary) => return Ok(Some((home, summary))),
            Err((error, lease)) => {
                // Unreachable via the feasibility pre-check above, but a
                // failed commit must hand the slices straight back to the
                // lender rather than strand the lease.
                if let Some(ready) = planes[lender].release_lent(lease, now)? {
                    ctx.orphan_releases.push((lender, ceil_secs(ready)));
                }
                match error {
                    PondError::PoolExhausted { .. } | PondError::NoFeasibleHost { .. } => {}
                    other => return Err(other),
                }
            }
        }
    }
    Ok(None)
}

/// Runs the fixed fallback ladder over `order` (a pod's reachable groups,
/// home first): pooled in the home group, the cross-pod BorrowedNeighbour
/// rung (only when `borrow` is provided), pooled in the remaining groups,
/// then — only when `allow_all_local` is on — all-local in the same order.
/// Returns the landing group and summary, or `None` when no rung holds the
/// VM. Shared by the arrival path, the failure-evacuation planner, and the
/// decommission drain, so a re-homed VM walks exactly the ladder a fresh
/// arrival would.
///
/// # Errors
///
/// Propagates any error other than the expected placement failures
/// (`PoolExhausted` on the pooled rungs, `NoFeasibleHost` on both).
fn place_on_ladder(
    planes: &mut [PondControlPlane],
    order: &[usize],
    request: &VmRequest,
    now: Duration,
    allow_all_local: bool,
    mut borrow: Option<BorrowRung<'_>>,
) -> Result<Option<(usize, PlacementSummary)>, PondError> {
    for (i, &g) in order.iter().enumerate() {
        match planes[g].handle_request_pooled(request, now) {
            Ok(summary) => return Ok(Some((g, summary))),
            Err(PondError::PoolExhausted { .. }) | Err(PondError::NoFeasibleHost { .. }) => {}
            Err(other) => return Err(other),
        }
        // The BorrowedNeighbour rung sits strictly between pooled-home and
        // the re-homing rungs: host locality is worth more than pool
        // locality, so a lease is tried before the VM moves pods.
        if i == 0 && order.len() > 1 {
            if let Some(ctx) = borrow.as_mut() {
                if let Some(placed) = try_borrow_rung(planes, order, request, now, ctx)? {
                    return Ok(Some(placed));
                }
            }
        }
    }
    if allow_all_local {
        for &g in order {
            match planes[g].handle_request_all_local(request, now) {
                Ok(summary) => return Ok(Some((g, summary))),
                Err(PondError::NoFeasibleHost { .. }) => {}
                Err(other) => return Err(other),
            }
        }
    }
    Ok(None)
}

/// Completes a graceful decommission once nothing is left in flight: a
/// `Draining` group becomes `Decommissioned` only when its last VM has been
/// drained, its last pending async release has been delivered, *and* every
/// slice it lent to other pods has been recalled — the slice ledger must be
/// fully settled before the pod is struck off, or a late [`Event::Release`]
/// (or a lease still held by a foreign VM) would free slices of a dead
/// pool. Checked at the end of the decommission event and again after every
/// release completion.
fn finish_decommission_if_drained(
    plane: &PondControlPlane,
    state: &mut GroupState,
    outcome: &mut FleetOutcome,
) {
    if *state == GroupState::Draining
        && plane.running_vms() == 0
        && plane.pool().pending_release().is_zero()
        && plane.lent_pool().is_zero()
    {
        *state = GroupState::Decommissioned;
        outcome.groups_decommissioned += 1;
    }
}

/// Replays a trace through N pool groups on one time-ordered event queue and
/// returns per-group and fleet-wide outcomes.
///
/// The prediction models are trained once and cloned into every group's
/// control plane (each group then learns its own online customer history
/// from the departures it sees).
///
/// # Errors
///
/// Propagates topology/construction failures and any error other than the
/// expected placement failures.
pub fn run_multipool_fleet(
    trace: &ClusterTrace,
    config: &MultiPoolConfig,
) -> Result<MultiPoolOutcome, PondError> {
    let policy = PondPolicy::train(trace, &config.control.policy, config.seed);
    run_multipool_source(TraceCursor::new(trace), config, policy)
}

/// [`run_multipool_fleet`] over any streaming [`ArrivalSource`] with an
/// already-trained policy: the sharded-replay twin of
/// [`crate::fleet::run_fleet_source`]. Per-VM bookkeeping (current group,
/// departure time, EMC blast-radius resolution) lives in a [`LiveVmArena`]
/// whose slots are recycled at departure, so replay memory is
/// O(live VMs + hosts + groups) regardless of trace length. Bit-identical
/// to the materialized replay on the same request stream.
///
/// # Errors
///
/// Same as [`run_multipool_fleet`], plus [`PondError::TraceStream`] when
/// the source fails mid-replay.
pub fn run_multipool_source<S: ArrivalSource>(
    source: S,
    config: &MultiPoolConfig,
    policy: PondPolicy,
) -> Result<MultiPoolOutcome, PondError> {
    run_multipool_source_observed(source, config, policy, &mut NullObserver)
}

/// [`run_multipool_source`] with a [`ReplayObserver`] wired into the loop:
/// the observer sees every popped event, every placement-ladder decision
/// (rung and fallback reason, home group and landing group), every
/// per-group QoS pass, every lifecycle operation (failures, repairs,
/// decommission drains, expansions, evacuations, rebalances), and one
/// [`GroupSample`] per group at each snapshot tick.
///
/// Observers are read-only, so the observed outcome is bit-identical to
/// [`run_multipool_source`] on the same `(source, config, policy)` — the
/// integration suite proptest-pins this with lifecycle and failure drills
/// enabled. With [`NullObserver`] every hook compiles out.
///
/// # Errors
///
/// Same as [`run_multipool_source`].
pub fn run_multipool_source_observed<S: ArrivalSource, O: ReplayObserver>(
    source: S,
    config: &MultiPoolConfig,
    policy: PondPolicy,
    observer: &mut O,
) -> Result<MultiPoolOutcome, PondError> {
    let topology = config.group_topology()?;
    let groups = topology.group_count();
    let mut planes = Vec::with_capacity(groups);
    for g in 0..groups {
        let group_config = ControlPlaneConfig {
            hosts: topology.hosts_in(g),
            pool_capacity: topology.pool(g).total_capacity(),
            ..config.control.clone()
        };
        planes.push(PondControlPlane::with_policy(group_config, policy.clone())?);
    }
    let mut scheduler = config.scheduler.build();
    let accounting = ReplayAccounting::new(&config.control);

    let mut per_group: Vec<FleetOutcome> = vec![FleetOutcome::default(); groups];
    let mut peak_local: Vec<Vec<Bytes>> =
        planes.iter().map(|p| vec![Bytes::ZERO; p.hosts().len()]).collect();
    let mut peak_host_pool = peak_local.clone();
    let mut peak_total = peak_local.clone();
    let mut pooled_host: Vec<Vec<bool>> =
        planes.iter().map(|p| vec![false; p.hosts().len()]).collect();
    let mut pooled_count: Vec<u64> = vec![0; groups];
    let mut degraded_of: Vec<u64> = vec![0; groups];

    let mut cross_group_placements = 0u64;
    let mut snapshot_ticks = 0u64;
    let mut degraded_fleet = 0u64;
    let mut peak_degraded_fleet = 0u64;
    let mut migrating_of: Vec<u64> = vec![0; groups];

    // Lender-side releases a failed borrow commit started inside the ladder
    // (the ladder has no queue access); drained into `Release` events right
    // after every ladder call. Empty on every path that can actually run —
    // the borrow rung pre-checks feasibility — but a stranded lease must
    // still land as an event, not leak.
    let mut orphan_releases: Vec<(usize, u64)> = Vec::new();

    // The live-VM arena: which group each live VM currently runs in, plus
    // the request itself (QoS take-backs and EMC blast radii resolve ids
    // through it). Slots are recycled as departures pop, so the bookkeeping
    // stays O(live VMs) however long the stream runs.
    let mut arena = LiveVmArena::new();
    let mut release_attribution = EventAttribution::default();
    let mut reconfig_attribution = EventAttribution::default();
    let mut migration_attribution = EventAttribution::default();

    // Evacuation copies reuse the QoS-mitigation machinery: the same
    // 50 ms/GiB reconfiguration engine, charged on the event timeline.
    let mut evacuation_engine = ReconfigurationEngine::default();

    // The failure drill is planned once, up front, deterministically from
    // the spec (the header's duration is all it needs): every failure is
    // already an event before the replay starts.
    let drill_plan = match &config.drill {
        Some(spec) => plan_drill(spec, source.header().duration, &topology),
        None => Vec::new(),
    };

    // Lifecycle planning: the drill's repair echo first (one repair per
    // planned failure, `mttr_secs` later — no random draws, so the failure
    // schedule is untouched), then the explicit plan's operations. Each
    // group starts `Online`; decommissions drain it through `Draining` to
    // `Decommissioned`, and an expansion can bring a decommissioned pod
    // back.
    let mut group_state = vec![GroupState::Online; groups];
    let mut repair_plan: Vec<PlannedEmcRepair> = Vec::new();
    if let Some(spec) = &config.drill {
        if let DrillKind::EmcWithRepair { mttr_secs } = spec.kind {
            repair_plan.extend(drill_plan.iter().map(|failure| PlannedEmcRepair {
                time: failure.time.saturating_add(mttr_secs),
                group: failure.group,
                emc: failure.emc,
            }));
        }
    }
    let mut expansion_plan: Vec<PlannedExpansion> = Vec::new();
    let mut expansion_times: Vec<u64> = Vec::new();
    let mut decommissions: Vec<(u64, usize)> = Vec::new();
    if let Some(plan) = &config.lifecycle {
        for event in &plan.events {
            match event.op {
                LifecycleOp::RepairEmc { group, emc } => {
                    assert!(group < groups, "lifecycle repair of group {group} of {groups}");
                    repair_plan.push(PlannedEmcRepair { time: event.time, group, emc });
                }
                LifecycleOp::DecommissionGroup { group } => {
                    assert!(group < groups, "lifecycle decommission of group {group} of {groups}");
                    decommissions.push((event.time, group));
                }
                LifecycleOp::ExpandGroup { group, capacity } => {
                    assert!(group < groups, "lifecycle expansion of group {group} of {groups}");
                    expansion_plan.push(PlannedExpansion { group, capacity });
                    expansion_times.push(event.time);
                }
            }
        }
    }

    let mut events = EventQueue::new(source, config.qos_interval);
    for (failure_index, failure) in drill_plan.iter().enumerate() {
        events.schedule_emc_failure(failure.time, failure_index);
    }
    for (repair_index, repair) in repair_plan.iter().enumerate() {
        events.schedule_emc_repair(repair.time, repair_index);
    }
    for &(time, group) in &decommissions {
        events.schedule_group_decommission(time, group);
    }
    for (expansion_index, &time) in expansion_times.iter().enumerate() {
        events.schedule_group_expansion(time, expansion_index);
    }
    while let Some(event) = events.next_event() {
        if O::ENABLED {
            observer.on_event(&event);
        }
        let now = Duration::from_secs(event.time());
        let mut snapshot_time = None;
        match event {
            Event::Arrival { request_index, .. } => {
                let request = events.take_arrival();
                // Only `Online` groups take placements; with every group
                // online (the common case and the whole no-lifecycle path)
                // this is exactly the historical all-groups flow, index for
                // index, so lifecycle-free replays stay bit-identical.
                let online: Vec<usize> =
                    (0..groups).filter(|&g| group_state[g].accepts_placements()).collect();
                if online.is_empty() {
                    // Every group is draining or gone: nothing can take the
                    // VM. Attributed to group 0 for want of a home.
                    per_group[0].rejected_vms += 1;
                    if O::ENABLED {
                        observer.on_decision(&DecisionTrace {
                            time: request.arrival,
                            vm: None,
                            home_group: 0,
                            group: None,
                            rung: LadderRung::Rejected,
                            reason: FallbackReason::NoOnlineGroup,
                            memory: request.memory,
                            lifetime: request.lifetime,
                        });
                    }
                    continue;
                }
                let views: Vec<GroupView> =
                    online.iter().map(|&g| GroupView::of(&planes[g], &request)).collect();
                let choice = scheduler.choose(&request, &views);
                assert!(choice < views.len(), "scheduler chose view {choice} of {}", views.len());
                let home = online[choice];
                let order: Vec<usize> = topology
                    .reachable(home)
                    .iter()
                    .copied()
                    .filter(|&g| group_state[g].accepts_placements())
                    .collect();

                // The fallback ladder: pooled in home, the BorrowedNeighbour
                // lease (borrowing only), pooled in reachable neighbours
                // (cross-group), then — only when the config enables it,
                // exactly like `run_fleet` — all-local in the same order.
                let placed = place_on_ladder(
                    &mut planes,
                    &order,
                    &request,
                    now,
                    config.control.fallback_all_local,
                    config.borrowing.then_some(BorrowRung {
                        topology: &topology,
                        orphan_releases: &mut orphan_releases,
                    }),
                )?;
                for (lender, ready) in orphan_releases.drain(..) {
                    events.schedule_release(ready);
                    release_attribution.push(ready, lender);
                }

                let Some((group, summary)) = placed else {
                    per_group[home].rejected_vms += 1;
                    if O::ENABLED {
                        observer.on_decision(&DecisionTrace {
                            time: request.arrival,
                            vm: None,
                            home_group: home,
                            group: None,
                            rung: LadderRung::Rejected,
                            reason: FallbackReason::NoRungHeld,
                            memory: request.memory,
                            lifetime: request.lifetime,
                        });
                    }
                    continue;
                };
                cross_group_placements += u64::from(group != home);
                accounting.record_placement(&mut per_group[group], &request, &summary);
                if summary.borrowed_from.is_some() {
                    per_group[group].vms_borrowed += 1;
                    per_group[group].borrowed_gib_hours +=
                        summary.pool.as_gib_f64() * request.lifetime as f64 / 3600.0;
                }
                if O::ENABLED {
                    let (rung, reason) = if summary.borrowed_from.is_some() {
                        (LadderRung::BorrowedNeighbor, FallbackReason::HomePoolFull)
                    } else {
                        match (group == home, summary.fallback_all_local) {
                            (true, false) => (LadderRung::PooledHome, FallbackReason::None),
                            (false, false) => {
                                (LadderRung::PooledNeighbor, FallbackReason::HomePoolFull)
                            }
                            (true, true) => {
                                (LadderRung::AllLocalHome, FallbackReason::PoolRungsExhausted)
                            }
                            (false, true) => {
                                (LadderRung::AllLocalNeighbor, FallbackReason::PoolRungsExhausted)
                            }
                        }
                    };
                    observer.on_decision(&DecisionTrace {
                        time: request.arrival,
                        vm: Some(summary.vm.0),
                        home_group: home,
                        group: Some(group),
                        rung,
                        reason,
                        memory: request.memory,
                        lifetime: request.lifetime,
                    });
                }
                if !summary.pool.is_zero() && !pooled_host[group][summary.host] {
                    pooled_host[group][summary.host] = true;
                    pooled_count[group] += 1;
                }
                let departure = request.departure();
                let token = arena.alloc(request, request_index as u64);
                arena.set_group(token, group as u32);
                events.schedule_departure(departure, request_index as u64, token);
            }
            Event::Departure { token, .. } => {
                // The slot is freed here and only here — a killed VM kept
                // its (groupless) slot alive until this no-op pop, so the
                // token could not have been recycled under the event.
                let vm = VmId(arena.request(token).id);
                let group = arena.free(token);
                if group != NO_GROUP {
                    let group = group as usize;
                    let outcome = planes[group].handle_departure_split(vm, now)?;
                    if let Some(ready) = outcome.release_ready {
                        let time = ceil_secs(ready);
                        events.schedule_release(time);
                        release_attribution.push(time, group);
                    }
                    // A borrowed VM's slices flow back to the *lender's*
                    // pool: the offlining release is scheduled against the
                    // lender group, not the group the VM ran in.
                    if let Some(lease) = outcome.lease {
                        let lender = lease.lender;
                        if let Some(ready) = planes[lender].release_lent(lease, now)? {
                            let time = ceil_secs(ready);
                            events.schedule_release(time);
                            release_attribution.push(time, lender);
                        }
                    }
                }
            }
            Event::Release { time } => {
                let group = release_attribution.pop(time);
                planes[group].complete_releases(now);
                per_group[group].releases_completed += 1;
                // A draining group's last pending release may have just
                // landed — only now may the pod be struck off.
                let was_draining = group_state[group] == GroupState::Draining;
                finish_decommission_if_drained(
                    &planes[group],
                    &mut group_state[group],
                    &mut per_group[group],
                );
                if O::ENABLED && was_draining && group_state[group] == GroupState::Decommissioned {
                    observer.on_lifecycle_op(&LifecycleTrace {
                        time,
                        group,
                        kind: LifecycleOpKind::DecommissionComplete,
                    });
                }
            }
            Event::ReconfigDone { time } => {
                let group = reconfig_attribution.pop(time);
                checked_decrement(&mut degraded_of[group], "per-group mitigation copies");
                per_group[group].reconfig_completions += 1;
                checked_decrement(&mut degraded_fleet, "fleet-wide mitigation copies");
            }
            Event::EmcFailure { failure_index, time } => {
                let failure = &drill_plan[failure_index];
                let source = failure.group;
                let outcome = planes[source].handle_emc_failure(failure.emc, now)?;
                per_group[source].emc_failures += 1;
                if O::ENABLED {
                    observer.on_lifecycle_op(&LifecycleTrace {
                        time,
                        group: source,
                        kind: LifecycleOpKind::EmcFailure {
                            affected: outcome.affected.len() as u64,
                        },
                    });
                }

                // The evacuation planner: every VM in the blast radius is
                // re-homed through the same fallback ladder arrivals use —
                // pooled over the pod's reachable *online* groups (the home
                // pod's surviving EMCs first, then the Octopus neighbours),
                // then all-local in the same order — or killed when no rung
                // holds it.
                let order: Vec<usize> = topology
                    .reachable(source)
                    .iter()
                    .copied()
                    .filter(|&g| group_state[g].accepts_placements())
                    .collect();
                for affected in outcome.affected {
                    let token = arena
                        .slot_of(affected.vm.0)
                        .expect("a running VM's id resolves to a live arena slot");
                    // Owned copy: the ladder and the group update below need
                    // the arena free while the request is in hand.
                    let request = arena.request(token).clone();

                    if let Some(ready) = planes[source].evacuate_vm(affected.vm, now)? {
                        let ready = ceil_secs(ready);
                        events.schedule_release(ready);
                        release_attribution.push(ready, source);
                    }
                    // The arrival charged this VM's full lifetime to the
                    // source group; take back the part it will no longer
                    // serve there (the destination re-charges its share).
                    let remaining_hours = request.departure().saturating_sub(time) as f64 / 3600.0;
                    per_group[source].pool_gib_hours -=
                        affected.pool_before.as_gib_f64() * remaining_hours;
                    per_group[source].total_gib_hours -=
                        request.memory.as_gib_f64() * remaining_hours;

                    let placed = place_on_ladder(
                        &mut planes,
                        &order,
                        &request,
                        now,
                        config.control.fallback_all_local,
                        config.borrowing.then_some(BorrowRung {
                            topology: &topology,
                            orphan_releases: &mut orphan_releases,
                        }),
                    )?;
                    for (lender, ready) in orphan_releases.drain(..) {
                        events.schedule_release(ready);
                        release_attribution.push(ready, lender);
                    }

                    match placed {
                        Some((dest, summary)) => {
                            // The migration copies the VM's full memory to
                            // its new home at the mitigation engine's
                            // 50 ms/GiB; the VM runs degraded until the
                            // MigrationDone event closes the window.
                            let copy = evacuation_engine.charge_copy(request.memory);
                            let done = ceil_secs(now + copy);
                            events.schedule_migration_done(done);
                            migration_attribution.push(done, source);
                            migrating_of[source] += 1;
                            per_group[source].vms_migrated += 1;
                            per_group[source].evacuation_copy_time += copy;
                            per_group[dest].pool_gib_hours +=
                                summary.pool.as_gib_f64() * remaining_hours;
                            per_group[dest].total_gib_hours +=
                                request.memory.as_gib_f64() * remaining_hours;
                            if summary.borrowed_from.is_some() {
                                per_group[dest].vms_borrowed += 1;
                                per_group[dest].borrowed_gib_hours +=
                                    summary.pool.as_gib_f64() * remaining_hours;
                            }
                            if !summary.pool.is_zero() && !pooled_host[dest][summary.host] {
                                pooled_host[dest][summary.host] = true;
                                pooled_count[dest] += 1;
                            }
                            arena.set_group(token, dest as u32);
                            if O::ENABLED {
                                observer.on_lifecycle_op(&LifecycleTrace {
                                    time,
                                    group: source,
                                    kind: LifecycleOpKind::VmEvacuated { dest: Some(dest), copy },
                                });
                            }
                        }
                        None => {
                            // No reachable pod can hold the VM: it dies
                            // with the device. The slot stays allocated but
                            // groupless until its already-scheduled
                            // departure event pops as a no-op and frees it.
                            per_group[source].vms_killed += 1;
                            arena.set_group(token, NO_GROUP);
                            if O::ENABLED {
                                observer.on_lifecycle_op(&LifecycleTrace {
                                    time,
                                    group: source,
                                    kind: LifecycleOpKind::VmEvacuated {
                                        dest: None,
                                        copy: Duration::ZERO,
                                    },
                                });
                            }
                        }
                    }
                }

                // Split ownership widens the blast radius: slices this pool
                // had lent out died with the device too, degrading VMs homed
                // in *other* pods. Each borrower pod strips the dead slices
                // from its leases and evacuates the struck VMs through its
                // own reachable ladder — the lender-pod failure reaches
                // hosts it never owned.
                if config.borrowing {
                    for borrower in 0..groups {
                        if borrower == source {
                            continue;
                        }
                        let struck = planes[borrower].strip_borrowed(source, failure.emc);
                        if struck.is_empty() {
                            continue;
                        }
                        let order: Vec<usize> = topology
                            .reachable(borrower)
                            .iter()
                            .copied()
                            .filter(|&g| group_state[g].accepts_placements())
                            .collect();
                        for affected in struck {
                            let token = arena
                                .slot_of(affected.vm.0)
                                .expect("a running VM's id resolves to a live arena slot");
                            let request = arena.request(token).clone();
                            let outcome = planes[borrower].evacuate_vm_split(affected.vm, now)?;
                            if let Some(ready) = outcome.release_ready {
                                let ready = ceil_secs(ready);
                                events.schedule_release(ready);
                                release_attribution.push(ready, borrower);
                            }
                            // The lease's surviving slices flow back to the
                            // lender that is mid-failure; the dead ones left
                            // the ledger with the device.
                            if let Some(lease) = outcome.lease {
                                let lender = lease.lender;
                                if let Some(ready) = planes[lender].release_lent(lease, now)? {
                                    let ready = ceil_secs(ready);
                                    events.schedule_release(ready);
                                    release_attribution.push(ready, lender);
                                }
                            }
                            let remaining_hours =
                                request.departure().saturating_sub(time) as f64 / 3600.0;
                            per_group[borrower].pool_gib_hours -=
                                affected.pool_before.as_gib_f64() * remaining_hours;
                            per_group[borrower].borrowed_gib_hours -=
                                affected.pool_before.as_gib_f64() * remaining_hours;
                            per_group[borrower].total_gib_hours -=
                                request.memory.as_gib_f64() * remaining_hours;
                            let placed = place_on_ladder(
                                &mut planes,
                                &order,
                                &request,
                                now,
                                config.control.fallback_all_local,
                                Some(BorrowRung {
                                    topology: &topology,
                                    orphan_releases: &mut orphan_releases,
                                }),
                            )?;
                            for (lender, ready) in orphan_releases.drain(..) {
                                events.schedule_release(ready);
                                release_attribution.push(ready, lender);
                            }
                            match placed {
                                Some((dest, summary)) => {
                                    let copy = evacuation_engine.charge_copy(request.memory);
                                    let done = ceil_secs(now + copy);
                                    events.schedule_migration_done(done);
                                    migration_attribution.push(done, borrower);
                                    migrating_of[borrower] += 1;
                                    per_group[borrower].vms_migrated += 1;
                                    per_group[borrower].evacuation_copy_time += copy;
                                    per_group[dest].pool_gib_hours +=
                                        summary.pool.as_gib_f64() * remaining_hours;
                                    per_group[dest].total_gib_hours +=
                                        request.memory.as_gib_f64() * remaining_hours;
                                    if summary.borrowed_from.is_some() {
                                        per_group[dest].vms_borrowed += 1;
                                        per_group[dest].borrowed_gib_hours +=
                                            summary.pool.as_gib_f64() * remaining_hours;
                                    }
                                    if !summary.pool.is_zero() && !pooled_host[dest][summary.host] {
                                        pooled_host[dest][summary.host] = true;
                                        pooled_count[dest] += 1;
                                    }
                                    arena.set_group(token, dest as u32);
                                    if O::ENABLED {
                                        observer.on_lifecycle_op(&LifecycleTrace {
                                            time,
                                            group: borrower,
                                            kind: LifecycleOpKind::VmEvacuated {
                                                dest: Some(dest),
                                                copy,
                                            },
                                        });
                                    }
                                }
                                None => {
                                    per_group[borrower].vms_killed += 1;
                                    arena.set_group(token, NO_GROUP);
                                    if O::ENABLED {
                                        observer.on_lifecycle_op(&LifecycleTrace {
                                            time,
                                            group: borrower,
                                            kind: LifecycleOpKind::VmEvacuated {
                                                dest: None,
                                                copy: Duration::ZERO,
                                            },
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Event::MigrationDone { time } => {
                let group = migration_attribution.pop(time);
                checked_decrement(&mut migrating_of[group], "in-flight migration copies");
                per_group[group].migration_completions += 1;
            }
            Event::EmcRepair { repair_index, .. } => {
                let repair = &repair_plan[repair_index];
                // The replacement device rejoins the pool empty: live and
                // free capacity grow by exactly the same amount, so the
                // conservation invariant holds through the repair. A repair
                // of a healthy device is a recorded no-op (zero restored).
                let restored = planes[repair.group].repair_emc(repair.emc)?;
                if !restored.is_zero() {
                    per_group[repair.group].emcs_repaired += 1;
                }
                if O::ENABLED {
                    observer.on_lifecycle_op(&LifecycleTrace {
                        time: now.as_secs(),
                        group: repair.group,
                        kind: LifecycleOpKind::EmcRepair { restored },
                    });
                }
            }
            Event::GroupDecommission { group, time } => {
                // Idempotent: only an online group can start draining.
                if group_state[group] == GroupState::Online {
                    group_state[group] = GroupState::Draining;
                    // The drain ladder: the pod's reachable online groups
                    // first (the source no longer accepts, so it is already
                    // excluded), then every other online group ascending —
                    // a drain may spill beyond the ring because the whole
                    // pod is leaving, not just one device.
                    let mut order: Vec<usize> = topology
                        .reachable(group)
                        .iter()
                        .copied()
                        .filter(|&g| group_state[g].accepts_placements())
                        .collect();
                    for (g, state) in group_state.iter().enumerate() {
                        if state.accepts_placements() && !order.contains(&g) {
                            order.push(g);
                        }
                    }
                    // Every running VM is drained through the ladder — the
                    // same evacuation path failures use, but counted as
                    // `vms_drained`, not `vms_migrated`: nothing died here.
                    let footprints = planes[group].running_vm_footprints();
                    if O::ENABLED {
                        observer.on_lifecycle_op(&LifecycleTrace {
                            time,
                            group,
                            kind: LifecycleOpKind::DecommissionStarted {
                                running: footprints.len() as u64,
                            },
                        });
                    }
                    for (vm, pool_before) in footprints {
                        let token = arena
                            .slot_of(vm.0)
                            .expect("a running VM's id resolves to a live arena slot");
                        let request = arena.request(token).clone();
                        let evacuated = planes[group].evacuate_vm_split(vm, now)?;
                        if let Some(ready) = evacuated.release_ready {
                            let ready = ceil_secs(ready);
                            events.schedule_release(ready);
                            release_attribution.push(ready, group);
                        }
                        // A draining VM may itself be leaning on another
                        // pod's pool: its lease flows back to that lender.
                        let was_borrowed = evacuated.lease.is_some();
                        if let Some(lease) = evacuated.lease {
                            let lender = lease.lender;
                            if let Some(ready) = planes[lender].release_lent(lease, now)? {
                                let ready = ceil_secs(ready);
                                events.schedule_release(ready);
                                release_attribution.push(ready, lender);
                            }
                        }
                        let remaining_hours =
                            request.departure().saturating_sub(time) as f64 / 3600.0;
                        per_group[group].pool_gib_hours -=
                            pool_before.as_gib_f64() * remaining_hours;
                        if was_borrowed {
                            per_group[group].borrowed_gib_hours -=
                                pool_before.as_gib_f64() * remaining_hours;
                        }
                        per_group[group].total_gib_hours -=
                            request.memory.as_gib_f64() * remaining_hours;
                        let placed = place_on_ladder(
                            &mut planes,
                            &order,
                            &request,
                            now,
                            config.control.fallback_all_local,
                            config.borrowing.then_some(BorrowRung {
                                topology: &topology,
                                orphan_releases: &mut orphan_releases,
                            }),
                        )?;
                        for (lender, ready) in orphan_releases.drain(..) {
                            events.schedule_release(ready);
                            release_attribution.push(ready, lender);
                        }
                        match placed {
                            Some((dest, summary)) => {
                                let copy = evacuation_engine.charge_copy(request.memory);
                                let done = ceil_secs(now + copy);
                                events.schedule_migration_done(done);
                                migration_attribution.push(done, group);
                                migrating_of[group] += 1;
                                per_group[group].vms_drained += 1;
                                per_group[group].evacuation_copy_time += copy;
                                per_group[dest].pool_gib_hours +=
                                    summary.pool.as_gib_f64() * remaining_hours;
                                per_group[dest].total_gib_hours +=
                                    request.memory.as_gib_f64() * remaining_hours;
                                if summary.borrowed_from.is_some() {
                                    per_group[dest].vms_borrowed += 1;
                                    per_group[dest].borrowed_gib_hours +=
                                        summary.pool.as_gib_f64() * remaining_hours;
                                }
                                if !summary.pool.is_zero() && !pooled_host[dest][summary.host] {
                                    pooled_host[dest][summary.host] = true;
                                    pooled_count[dest] += 1;
                                }
                                arena.set_group(token, dest as u32);
                                if O::ENABLED {
                                    observer.on_lifecycle_op(&LifecycleTrace {
                                        time,
                                        group,
                                        kind: LifecycleOpKind::VmDrained { dest: Some(dest), copy },
                                    });
                                }
                            }
                            None => {
                                // No online group anywhere holds the VM: a
                                // graceful drain degrades to a kill only as
                                // the absolute last resort.
                                per_group[group].vms_killed += 1;
                                arena.set_group(token, NO_GROUP);
                                if O::ENABLED {
                                    observer.on_lifecycle_op(&LifecycleTrace {
                                        time,
                                        group,
                                        kind: LifecycleOpKind::VmDrained {
                                            dest: None,
                                            copy: Duration::ZERO,
                                        },
                                    });
                                }
                            }
                        }
                    }
                    // A draining pod must also recall the slices it *lent*:
                    // VMs homed in other pods still lean on this pool, and
                    // the pod cannot be struck off while a single lease is
                    // outstanding. Each borrower's VM is drained through the
                    // borrower's own ladder (the draining pod no longer
                    // accepts, so it is excluded automatically), and its
                    // lease flows back as a pending release here.
                    if config.borrowing {
                        for borrower in 0..groups {
                            if borrower == group {
                                continue;
                            }
                            let leaning = planes[borrower].borrowers_of(group);
                            if leaning.is_empty() {
                                continue;
                            }
                            let order: Vec<usize> = topology
                                .reachable(borrower)
                                .iter()
                                .copied()
                                .filter(|&g| group_state[g].accepts_placements())
                                .collect();
                            for (vm, pool_before) in leaning {
                                let token = arena
                                    .slot_of(vm.0)
                                    .expect("a running VM's id resolves to a live arena slot");
                                let request = arena.request(token).clone();
                                let evacuated = planes[borrower].evacuate_vm_split(vm, now)?;
                                if let Some(ready) = evacuated.release_ready {
                                    let ready = ceil_secs(ready);
                                    events.schedule_release(ready);
                                    release_attribution.push(ready, borrower);
                                }
                                if let Some(lease) = evacuated.lease {
                                    let lender = lease.lender;
                                    if let Some(ready) = planes[lender].release_lent(lease, now)? {
                                        let ready = ceil_secs(ready);
                                        events.schedule_release(ready);
                                        release_attribution.push(ready, lender);
                                    }
                                }
                                let remaining_hours =
                                    request.departure().saturating_sub(time) as f64 / 3600.0;
                                per_group[borrower].pool_gib_hours -=
                                    pool_before.as_gib_f64() * remaining_hours;
                                per_group[borrower].borrowed_gib_hours -=
                                    pool_before.as_gib_f64() * remaining_hours;
                                per_group[borrower].total_gib_hours -=
                                    request.memory.as_gib_f64() * remaining_hours;
                                let placed = place_on_ladder(
                                    &mut planes,
                                    &order,
                                    &request,
                                    now,
                                    config.control.fallback_all_local,
                                    Some(BorrowRung {
                                        topology: &topology,
                                        orphan_releases: &mut orphan_releases,
                                    }),
                                )?;
                                for (lender, ready) in orphan_releases.drain(..) {
                                    events.schedule_release(ready);
                                    release_attribution.push(ready, lender);
                                }
                                match placed {
                                    Some((dest, summary)) => {
                                        let copy = evacuation_engine.charge_copy(request.memory);
                                        let done = ceil_secs(now + copy);
                                        events.schedule_migration_done(done);
                                        migration_attribution.push(done, group);
                                        migrating_of[group] += 1;
                                        per_group[group].vms_drained += 1;
                                        per_group[group].evacuation_copy_time += copy;
                                        per_group[dest].pool_gib_hours +=
                                            summary.pool.as_gib_f64() * remaining_hours;
                                        per_group[dest].total_gib_hours +=
                                            request.memory.as_gib_f64() * remaining_hours;
                                        if summary.borrowed_from.is_some() {
                                            per_group[dest].vms_borrowed += 1;
                                            per_group[dest].borrowed_gib_hours +=
                                                summary.pool.as_gib_f64() * remaining_hours;
                                        }
                                        if !summary.pool.is_zero()
                                            && !pooled_host[dest][summary.host]
                                        {
                                            pooled_host[dest][summary.host] = true;
                                            pooled_count[dest] += 1;
                                        }
                                        arena.set_group(token, dest as u32);
                                        if O::ENABLED {
                                            observer.on_lifecycle_op(&LifecycleTrace {
                                                time,
                                                group,
                                                kind: LifecycleOpKind::VmDrained {
                                                    dest: Some(dest),
                                                    copy,
                                                },
                                            });
                                        }
                                    }
                                    None => {
                                        // Even a recall degrades to a kill
                                        // only as the absolute last resort.
                                        per_group[group].vms_killed += 1;
                                        arena.set_group(token, NO_GROUP);
                                        if O::ENABLED {
                                            observer.on_lifecycle_op(&LifecycleTrace {
                                                time,
                                                group,
                                                kind: LifecycleOpKind::VmDrained {
                                                    dest: None,
                                                    copy: Duration::ZERO,
                                                },
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // With no pending releases and no outstanding leases the
                    // pod is already done; otherwise the last Release event
                    // completes it.
                    finish_decommission_if_drained(
                        &planes[group],
                        &mut group_state[group],
                        &mut per_group[group],
                    );
                    if O::ENABLED && group_state[group] == GroupState::Decommissioned {
                        observer.on_lifecycle_op(&LifecycleTrace {
                            time,
                            group,
                            kind: LifecycleOpKind::DecommissionComplete,
                        });
                    }
                }
            }
            Event::GroupExpansion { expansion_index, .. } => {
                let expansion = &expansion_plan[expansion_index];
                planes[expansion.group].expand_pool(expansion.capacity);
                per_group[expansion.group].groups_expanded += 1;
                if O::ENABLED {
                    observer.on_lifecycle_op(&LifecycleTrace {
                        time: now.as_secs(),
                        group: expansion.group,
                        kind: LifecycleOpKind::Expansion { capacity: expansion.capacity },
                    });
                }
                // Growing a decommissioned pod is the replacement case: the
                // new hardware brings the group back online. A draining pod
                // stays draining — new capacity does not cancel a planned
                // decommission.
                if group_state[expansion.group] == GroupState::Decommissioned {
                    group_state[expansion.group] = GroupState::Online;
                }
            }
            Event::Snapshot { time } => {
                snapshot_ticks += 1;
                snapshot_time = Some(time);
                let mut reclaimed: Vec<(usize, BorrowedReclaim)> = Vec::new();
                for (group, plane) in planes.iter_mut().enumerate() {
                    let mut pass = plane.run_qos_pass(now)?;
                    // A mitigated *borrowed* VM hands its lease back to the
                    // lending plane, which we cannot touch while iterating —
                    // park the reclaims and route them after the loop.
                    reclaimed.extend(
                        std::mem::take(&mut pass.borrowed_reclaims)
                            .into_iter()
                            .map(|reclaim| (group, reclaim)),
                    );
                    if O::ENABLED {
                        observer.on_qos_pass(&QosPassTrace {
                            time,
                            group,
                            reconfigured: pass.reconfigured,
                            copy_time: pass.copy_time,
                        });
                    }
                    accounting.record_qos_pass(
                        &mut per_group[group],
                        pass,
                        time,
                        |id| arena.departure_of(id),
                        &mut degraded_of[group],
                        |kind, at| match kind {
                            ScheduledEvent::ReconfigDone => {
                                events.schedule_reconfig_done(at);
                                reconfig_attribution.push(at, group);
                                degraded_fleet += 1;
                                peak_degraded_fleet = peak_degraded_fleet.max(degraded_fleet);
                            }
                            ScheduledEvent::Release => {
                                events.schedule_release(at);
                                release_attribution.push(at, group);
                            }
                        },
                    );
                }
                for (group, reclaim) in reclaimed {
                    let moved = reclaim.lease.capacity();
                    let remaining_hours = arena
                        .departure_of(reclaim.vm.0)
                        .map_or(0, |departure| departure.saturating_sub(time))
                        as f64
                        / 3600.0;
                    per_group[group].borrowed_gib_hours -= moved.as_gib_f64() * remaining_hours;
                    let lender = reclaim.lease.lender;
                    if let Some(ready) =
                        planes[lender].release_lent(reclaim.lease, reclaim.copy_done)?
                    {
                        let ready = ceil_secs(ready);
                        events.schedule_release(ready);
                        release_attribution.push(ready, lender);
                    }
                }
                // Proactive rebalancing rides the same QoS cadence, after
                // the monitoring passes: each pool-starved online group
                // moves a few VMs to its ring neighbour before pressure
                // turns into rejections. Every move is pre-checked against
                // the destination, so a rebalance can never kill a VM.
                if let Some(spec) = &config.rebalance {
                    for g in 0..groups {
                        if group_state[g] != GroupState::Online {
                            continue;
                        }
                        // The ring neighbour is the second reachable group;
                        // symmetric pods have none and never rebalance.
                        let Some(&dest) = topology.reachable(g).get(1) else {
                            continue;
                        };
                        if !group_state[dest].accepts_placements() {
                            continue;
                        }
                        let available = planes[g].pool().available();
                        let live = planes[g].pool().pool().live_capacity();
                        let starved =
                            available.as_gib_f64() < spec.starved_fraction * live.as_gib_f64();
                        // Move only downhill: the neighbour must have
                        // strictly more free pool than the starved source.
                        if !starved || planes[dest].pool().available() <= available {
                            continue;
                        }
                        let candidates: Vec<(VmId, Bytes)> = planes[g]
                            .running_vm_footprints()
                            .into_iter()
                            .filter(|(_, pool)| !pool.is_zero())
                            .take(spec.max_moves_per_pass as usize)
                            .collect();
                        for (vm, pool_before) in candidates {
                            let token = arena
                                .slot_of(vm.0)
                                .expect("a running VM's id resolves to a live arena slot");
                            let request = arena.request(token).clone();
                            // The never-kill pre-check: skip the VM unless
                            // the neighbour could hold it entirely in local
                            // DRAM — the all-local rung below then cannot
                            // fail even if its pool is tight.
                            if planes[dest].tightest_feasible_host(request.memory).is_none() {
                                continue;
                            }
                            let evacuated = planes[g].evacuate_vm_split(vm, now)?;
                            if let Some(ready) = evacuated.release_ready {
                                let ready = ceil_secs(ready);
                                events.schedule_release(ready);
                                release_attribution.push(ready, g);
                            }
                            let was_borrowed = evacuated.lease.is_some();
                            if let Some(lease) = evacuated.lease {
                                let lender = lease.lender;
                                if let Some(ready) = planes[lender].release_lent(lease, now)? {
                                    let ready = ceil_secs(ready);
                                    events.schedule_release(ready);
                                    release_attribution.push(ready, lender);
                                }
                            }
                            let remaining_hours =
                                request.departure().saturating_sub(time) as f64 / 3600.0;
                            per_group[g].pool_gib_hours -=
                                pool_before.as_gib_f64() * remaining_hours;
                            if was_borrowed {
                                per_group[g].borrowed_gib_hours -=
                                    pool_before.as_gib_f64() * remaining_hours;
                            }
                            per_group[g].total_gib_hours -=
                                request.memory.as_gib_f64() * remaining_hours;
                            // The borrow rung stays off here: the order is a
                            // single pre-checked group and the move exists to
                            // relieve pressure, not to spread new leases.
                            let order = [dest];
                            let (landed, summary) =
                                place_on_ladder(&mut planes, &order, &request, now, true, None)?
                                    .expect("rebalance pre-checked destination feasibility");
                            let copy = evacuation_engine.charge_copy(request.memory);
                            let done = ceil_secs(now + copy);
                            events.schedule_migration_done(done);
                            migration_attribution.push(done, g);
                            migrating_of[g] += 1;
                            per_group[g].vms_rebalanced += 1;
                            per_group[g].evacuation_copy_time += copy;
                            per_group[landed].pool_gib_hours +=
                                summary.pool.as_gib_f64() * remaining_hours;
                            per_group[landed].total_gib_hours +=
                                request.memory.as_gib_f64() * remaining_hours;
                            if !summary.pool.is_zero() && !pooled_host[landed][summary.host] {
                                pooled_host[landed][summary.host] = true;
                                pooled_count[landed] += 1;
                            }
                            arena.set_group(token, landed as u32);
                            if O::ENABLED {
                                observer.on_lifecycle_op(&LifecycleTrace {
                                    time,
                                    group: g,
                                    kind: LifecycleOpKind::VmRebalanced { dest: landed, copy },
                                });
                            }
                        }
                    }
                }

                // The deep per-group recount runs only at snapshot ticks
                // (and end of replay) in debug builds.
                #[cfg(debug_assertions)]
                assert_fleet_conserved_full(&planes);
            }
        }

        // Provisioning peaks after every event: each group samples only the
        // hosts the event touched (usually none).
        for (group, plane) in planes.iter_mut().enumerate() {
            track_peaks_touched(
                plane,
                &mut per_group[group],
                &mut peak_local[group],
                &mut peak_host_pool[group],
                &mut peak_total[group],
            );
        }

        if O::ENABLED {
            if let Some(time) = snapshot_time {
                let samples: Vec<GroupSample> = (0..groups)
                    .map(|g| GroupSample {
                        group: g,
                        state: group_state[g],
                        pool_free: planes[g].pool().available(),
                        pool_offlining: planes[g].pool().pending_release(),
                        pool_pinned: planes[g].pinned_pool(),
                        pool_live: planes[g].pool().pool().live_capacity(),
                        pool_lent: planes[g].lent_pool(),
                        pool_borrowed: planes[g].borrowed_pool(),
                        running_vms: planes[g].running_vms() as u64,
                        scheduled_vms: per_group[g].scheduled_vms,
                        rejected_vms: per_group[g].rejected_vms,
                        vms_killed: per_group[g].vms_killed,
                        sum_total_peaks: peak_total[g].iter().copied().sum(),
                        sum_host_pool_peaks: peak_host_pool[g].iter().copied().sum(),
                        pool_peak: per_group[g].pool_peak,
                    })
                    .collect();
                observer.on_snapshot(time, &samples);
            }
        }

        // Per-group + fleet-wide conservation, checked at every event in
        // debug builds — O(groups) now that the counters are incremental.
        #[cfg(debug_assertions)]
        assert_fleet_conserved(&planes);
    }
    if let Some(error) = events.source_error() {
        return Err(PondError::TraceStream(error.to_string()));
    }

    #[cfg(debug_assertions)]
    assert_fleet_conserved_full(&planes);
    for (group, plane) in planes.iter().enumerate() {
        debug_assert_eq!(plane.running_vms(), 0, "group {group}: every VM must have departed");
        debug_assert!(
            plane.pool().pending_release().is_zero(),
            "group {group}: every release event must have been delivered"
        );
        debug_assert_eq!(degraded_of[group], 0, "group {group}: every copy must have completed");
        debug_assert_eq!(
            migrating_of[group], 0,
            "group {group}: every migration copy must have completed"
        );
        debug_assert_eq!(
            per_group[group].migration_completions,
            per_group[group].vms_migrated
                + per_group[group].vms_drained
                + per_group[group].vms_rebalanced,
            "group {group}: one MigrationDone event per migration copy — \
             failure evacuations, drains, and rebalances alike"
        );
    }

    for group in 0..groups {
        let outcome = &mut per_group[group];
        outcome.pooled_host_count = pooled_count[group];
        outcome.sum_local_peaks = peak_local[group].iter().copied().sum();
        outcome.sum_host_pool_peaks = peak_host_pool[group].iter().copied().sum();
        outcome.sum_total_peaks = peak_total[group].iter().copied().sum();
    }

    // The aggregate absorbs every per-group outcome field by field (release,
    // reconfig, and rejection counts are attributed to exactly one group, so
    // their sums equal the event totals), then overwrites the two
    // non-additive fields: shared snapshot ticks and the fleet-wide peak.
    let mut fleet = FleetOutcome::default();
    for outcome in &per_group {
        fleet.absorb(outcome);
    }
    fleet.qos_passes = snapshot_ticks;
    fleet.peak_degraded_vms = peak_degraded_fleet;

    Ok(MultiPoolOutcome {
        fleet,
        per_group,
        cross_group_placements,
        scheduler: scheduler.name().to_string(),
        pod: config.pod,
    })
}

/// One cell of a (pod style × group count × pool fraction × scheduler ×
/// borrowing) grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiPoolSweepSpec {
    /// Pod style for this cell.
    pub pod: PodStyle,
    /// Number of pool groups.
    pub groups: u16,
    /// Pool capacity as a fraction of the fleet's DRAM.
    pub pool_fraction: f64,
    /// Scheduling strategy.
    pub scheduler: GroupSchedulerKind,
    /// Cross-pod slice borrowing ([`MultiPoolConfig::borrowing`]).
    #[serde(default)]
    pub borrowing: bool,
}

/// One completed cell of a multi-pool sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPoolSweepPoint {
    /// The grid cell that ran.
    pub spec: MultiPoolSweepSpec,
    /// The full replay outcome for that cell.
    pub outcome: MultiPoolOutcome,
}

/// Sweeps a (pod × groups × pool fraction × scheduler) grid over one trace
/// on the parallel [`sweep`] runner. Results come back in `specs` order and
/// each cell is deterministic for a fixed `(trace, seed)`, so the whole
/// sweep is reproducible bit for bit — including between
/// `POND_SWEEP_THREADS=1` and the default thread count.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn multipool_sweep(
    trace: &ClusterTrace,
    specs: &[MultiPoolSweepSpec],
    seed: u64,
) -> Result<Vec<MultiPoolSweepPoint>, PondError> {
    let results = sweep::parallel_map(specs, |_, &spec| {
        let config = MultiPoolConfig::for_trace(
            trace,
            spec.pod,
            spec.groups,
            spec.pool_fraction,
            spec.scheduler,
            seed,
        )
        .with_borrowing(spec.borrowing);
        run_multipool_fleet(trace, &config).map(|outcome| MultiPoolSweepPoint { spec, outcome })
    });
    results.into_iter().collect()
}

/// [`multipool_sweep`] over a source factory: every grid cell streams a
/// fresh source (training prefix included) instead of sharing a
/// materialized trace. Bit-identical to [`multipool_sweep`] when the
/// factory yields the same request stream. `make_source` may run from
/// several threads at once.
///
/// # Errors
///
/// Propagates the first replay or stream error in sweep order.
pub fn multipool_sweep_source<S, F>(
    make_source: F,
    specs: &[MultiPoolSweepSpec],
    seed: u64,
) -> Result<Vec<MultiPoolSweepPoint>, PondError>
where
    S: ArrivalSource,
    F: Fn() -> S + Sync,
{
    let header = make_source().header().clone();
    let results = sweep::parallel_map(specs, |_, &spec| {
        let config = MultiPoolConfig::for_header(
            &header,
            spec.pod,
            spec.groups,
            spec.pool_fraction,
            spec.scheduler,
            seed,
        )
        .with_borrowing(spec.borrowing);
        let policy = PondPolicy::train_source(&make_source, &config.control.policy, config.seed)?;
        run_multipool_source(make_source(), &config, policy)
            .map(|outcome| MultiPoolSweepPoint { spec, outcome })
    });
    results.into_iter().collect()
}

/// One cell of a failure-drill grid: a multi-pool cell plus the drill rate
/// injected into it. A rate of `0.0` runs the cell drill-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureDrillSweepSpec {
    /// The multi-pool cell under drill.
    pub cell: MultiPoolSweepSpec,
    /// Expected EMC failures per simulated day (`0.0` disables the drill).
    pub rate_per_day: f64,
}

/// One completed cell of a failure-drill sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureDrillSweepPoint {
    /// The grid cell that ran.
    pub spec: FailureDrillSweepSpec,
    /// The full replay outcome for that cell.
    pub outcome: MultiPoolOutcome,
}

/// Sweeps failure drills over pod topologies on the parallel [`sweep`]
/// runner: every cell replays the trace with EMC failures injected at
/// `rate_per_day` and the evacuation planner answering them. All cells
/// share one drill seed, so two pod styles at the same rate see the *same*
/// failure schedule — the survival-rate comparison isolates the topology.
/// Deterministic for a fixed `(trace, seed, drill_seed)`, including between
/// `POND_SWEEP_THREADS=1` and the default thread count.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn failure_drill_sweep(
    trace: &ClusterTrace,
    specs: &[FailureDrillSweepSpec],
    seed: u64,
    drill_seed: u64,
) -> Result<Vec<FailureDrillSweepPoint>, PondError> {
    failure_drill_sweep_with(trace, specs, |spec| drill_config(trace, spec, seed, drill_seed))
}

/// The default cell configuration [`failure_drill_sweep`] runs: the
/// trace-sized multi-pool fleet with the cell's drill attached (rate `0.0`
/// leaves the replay drill-free).
pub fn drill_config(
    trace: &ClusterTrace,
    spec: &FailureDrillSweepSpec,
    seed: u64,
    drill_seed: u64,
) -> MultiPoolConfig {
    let config = MultiPoolConfig::for_trace(
        trace,
        spec.cell.pod,
        spec.cell.groups,
        spec.cell.pool_fraction,
        spec.cell.scheduler,
        seed,
    );
    if spec.rate_per_day > 0.0 {
        config.with_drill(FailureDrillSpec {
            rate_per_day: spec.rate_per_day,
            kind: DrillKind::Emc,
            seed: drill_seed,
        })
    } else {
        config
    }
}

/// [`failure_drill_sweep`] with a caller-supplied configuration per cell
/// (e.g. to tighten per-host local DRAM so evacuations compete for real
/// headroom, the `fig_failure_drill` setup). `make_config` may run from
/// several threads at once.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn failure_drill_sweep_with<F>(
    trace: &ClusterTrace,
    specs: &[FailureDrillSweepSpec],
    make_config: F,
) -> Result<Vec<FailureDrillSweepPoint>, PondError>
where
    F: Fn(&FailureDrillSweepSpec) -> MultiPoolConfig + Sync,
{
    let results = sweep::parallel_map(specs, |_, &spec| {
        run_multipool_fleet(trace, &make_config(&spec))
            .map(|outcome| FailureDrillSweepPoint { spec, outcome })
    });
    results.into_iter().collect()
}

/// One cell of a lifecycle grid: a multi-pool cell plus an optional failure
/// drill, an optional explicit lifecycle plan, and optional proactive
/// rebalancing. With all three `None` the cell replays plain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleSweepSpec {
    /// The multi-pool cell under test.
    pub cell: MultiPoolSweepSpec,
    /// Optional failure drill (including [`DrillKind::EmcWithRepair`]).
    pub drill: Option<FailureDrillSpec>,
    /// Optional explicit lifecycle schedule.
    pub lifecycle: Option<LifecyclePlan>,
    /// Optional proactive rebalancing.
    pub rebalance: Option<RebalanceSpec>,
}

/// One completed cell of a lifecycle sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleSweepPoint {
    /// The grid cell that ran.
    pub spec: LifecycleSweepSpec,
    /// The full replay outcome for that cell.
    pub outcome: MultiPoolOutcome,
}

/// The default cell configuration [`lifecycle_sweep`] runs: the trace-sized
/// multi-pool fleet with the cell's drill, lifecycle plan, and rebalance
/// spec attached.
pub fn lifecycle_config(
    trace: &ClusterTrace,
    spec: &LifecycleSweepSpec,
    seed: u64,
) -> MultiPoolConfig {
    let mut config = MultiPoolConfig::for_trace(
        trace,
        spec.cell.pod,
        spec.cell.groups,
        spec.cell.pool_fraction,
        spec.cell.scheduler,
        seed,
    );
    config.drill = spec.drill;
    config.lifecycle = spec.lifecycle.clone();
    config.rebalance = spec.rebalance;
    config.borrowing = spec.cell.borrowing;
    config
}

/// Sweeps lifecycle scenarios over one trace on the parallel [`sweep`]
/// runner: pools die, heal, drain, and join mid-replay, cell by cell.
/// Results come back in `specs` order and each cell is deterministic for a
/// fixed `(trace, seed)`, so the whole sweep is reproducible bit for bit —
/// including between `POND_SWEEP_THREADS=1` and the default thread count.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn lifecycle_sweep(
    trace: &ClusterTrace,
    specs: &[LifecycleSweepSpec],
    seed: u64,
) -> Result<Vec<LifecycleSweepPoint>, PondError> {
    lifecycle_sweep_with(trace, specs, |spec| lifecycle_config(trace, spec, seed))
}

/// [`lifecycle_sweep`] with a caller-supplied configuration per cell (e.g.
/// to tighten per-host local DRAM so drains compete for real headroom, the
/// `fig_lifecycle` setup). `make_config` may run from several threads at
/// once.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn lifecycle_sweep_with<F>(
    trace: &ClusterTrace,
    specs: &[LifecycleSweepSpec],
    make_config: F,
) -> Result<Vec<LifecycleSweepPoint>, PondError>
where
    F: Fn(&LifecycleSweepSpec) -> MultiPoolConfig + Sync,
{
    let results = sweep::parallel_map(specs, |_, spec| {
        run_multipool_fleet(trace, &make_config(spec))
            .map(|outcome| LifecycleSweepPoint { spec: spec.clone(), outcome })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};

    fn small_trace() -> ClusterTrace {
        TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
    }

    fn config(pod: PodStyle, groups: u16, scheduler: GroupSchedulerKind) -> MultiPoolConfig {
        MultiPoolConfig::for_trace(&small_trace(), pod, groups, 0.20, scheduler, 7)
    }

    #[test]
    fn four_symmetric_groups_replay_with_conservation() {
        let trace = small_trace();
        let outcome = run_multipool_fleet(
            &trace,
            &config(PodStyle::Symmetric, 4, GroupSchedulerKind::RoundRobin),
        )
        .unwrap();
        assert_eq!(outcome.per_group.len(), 4);
        assert!(outcome.fleet.scheduled_vms > 0);
        assert!(outcome.fleet.pool_dram_fraction() > 0.0);
        // Round-robin spreads work: every group schedules something.
        for group in &outcome.per_group {
            assert!(group.scheduled_vms > 0, "{outcome:?}");
        }
        // Symmetric pods have no cross-group reach.
        assert_eq!(outcome.cross_group_placements, 0);
        assert_eq!(outcome.scheduler, "round-robin");
        // The aggregate is the sum of the per-group breakdowns.
        let scheduled: u64 = outcome.per_group.iter().map(|g| g.scheduled_vms).sum();
        assert_eq!(outcome.fleet.scheduled_vms, scheduled);
        let pool_peak: Bytes = outcome.per_group.iter().map(|g| g.pool_peak).sum();
        assert_eq!(outcome.fleet.pool_peak, pool_peak);
    }

    #[test]
    fn octopus_reach_enables_cross_group_placements() {
        let trace = small_trace();
        // Tiny pools force pool exhaustion in the home group, which the
        // octopus ring can absorb by borrowing the neighbour's pool.
        let mut symmetric = config(PodStyle::Symmetric, 4, GroupSchedulerKind::RoundRobin);
        symmetric.control.pool_capacity = Bytes::from_gib(16);
        let mut octopus = symmetric.clone();
        octopus.pod = PodStyle::Octopus;
        let sym = run_multipool_fleet(&trace, &symmetric).unwrap();
        let oct = run_multipool_fleet(&trace, &octopus).unwrap();
        assert_eq!(sym.cross_group_placements, 0);
        assert!(oct.cross_group_placements > 0, "octopus must borrow: {oct:?}");
        assert_eq!(oct.pod, PodStyle::Octopus);
        // Borrowing only ever happens under pool pressure: every cross-group
        // placement corresponds to a home group that could not serve the
        // VM, so the fleet still schedules essentially everything.
        assert!(oct.fleet.scheduled_vms > 0);
        assert!(
            oct.fleet.scheduled_vms + oct.fleet.rejected_vms
                == sym.fleet.scheduled_vms + sym.fleet.rejected_vms,
            "both topologies see the same arrival stream"
        );
    }

    #[test]
    fn schedulers_are_deterministic_and_distinct() {
        let trace = small_trace();
        let mut outcomes = Vec::new();
        for kind in GroupSchedulerKind::ALL {
            let a = run_multipool_fleet(&trace, &config(PodStyle::Symmetric, 4, kind)).unwrap();
            let b = run_multipool_fleet(&trace, &config(PodStyle::Symmetric, 4, kind)).unwrap();
            assert_eq!(a, b, "{kind:?} must be deterministic");
            assert_eq!(a.scheduler, kind.name());
            outcomes.push(a);
        }
        // The strategies genuinely schedule differently on this trace.
        assert!(
            outcomes.windows(2).any(|pair| pair[0].per_group != pair[1].per_group),
            "all three schedulers produced identical group loads"
        );
    }

    #[test]
    fn group_views_reflect_plane_state() {
        let trace = small_trace();
        let cfg = config(PodStyle::Symmetric, 2, GroupSchedulerKind::MostFreePool);
        let topology = cfg.group_topology().unwrap();
        assert_eq!(topology.group_count(), 2);
        let policy = PondPolicy::train(&trace, &cfg.control.policy, cfg.seed);
        let plane = PondControlPlane::with_policy(
            ControlPlaneConfig {
                hosts: topology.hosts_in(0),
                pool_capacity: topology.pool(0).total_capacity(),
                ..cfg.control.clone()
            },
            policy,
        )
        .unwrap();
        let view = GroupView::of(&plane, &trace.requests[0]);
        assert_eq!(view.pool_free, topology.pool(0).total_capacity());
        assert_eq!(view.running_vms, 0);
        assert_eq!(view.most_free_host, plane.hosts()[0].local_free());
        assert!(view.tightest_feasible.is_some());
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        let trace = small_trace();
        // More groups than hosts (the small trace has 16 servers).
        let bad = config(PodStyle::Symmetric, 64, GroupSchedulerKind::RoundRobin);
        assert!(run_multipool_fleet(&trace, &bad).is_err());
    }

    fn drill(rate_per_day: f64) -> FailureDrillSpec {
        FailureDrillSpec { rate_per_day, kind: DrillKind::Emc, seed: 99 }
    }

    #[test]
    fn drill_plans_are_deterministic_and_respect_the_rate() {
        let topology =
            PoolGroupTopology::new(PodStyle::Octopus, 4, 16, 16, Bytes::from_gib(64)).unwrap();
        let a = plan_drill(&drill(2.0), 4 * 86_400, &topology);
        let b = plan_drill(&drill(2.0), 4 * 86_400, &topology);
        assert_eq!(a, b, "same spec must plan the same failures");
        assert!(!a.is_empty(), "2/day over 4 days should fire");
        for failure in &a {
            assert!(failure.group < 4);
            assert!(failure.time < 4 * 86_400);
        }
        // Different seeds plan different schedules.
        let c = plan_drill(&FailureDrillSpec { seed: 100, ..drill(2.0) }, 4 * 86_400, &topology);
        assert_ne!(a, c);
        // Degenerate specs plan nothing.
        assert!(plan_drill(&drill(0.0), 4 * 86_400, &topology).is_empty());
        assert!(plan_drill(&drill(-1.0), 4 * 86_400, &topology).is_empty());
        assert!(plan_drill(&drill(2.0), 0, &topology).is_empty());
    }

    #[test]
    fn zero_rate_drill_is_bit_identical_to_no_drill() {
        let trace = small_trace();
        let plain = config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin);
        let zero = plain.clone().with_drill(drill(0.0));
        let a = run_multipool_fleet(&trace, &plain).unwrap();
        let b = run_multipool_fleet(&trace, &zero).unwrap();
        assert_eq!(a, b, "a zero-rate drill must not perturb the replay");
        assert_eq!(a.fleet.emc_failures, 0);
        assert_eq!(a.fleet.vms_killed, 0);
        assert_eq!(a.fleet.vms_migrated, 0);
        assert_eq!(a.fleet.availability(), 1.0);
    }

    #[test]
    fn drilled_replay_is_deterministic_and_survives_conservation() {
        let trace = small_trace();
        let cfg =
            config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin).with_drill(drill(4.0));
        let a = run_multipool_fleet(&trace, &cfg).unwrap();
        let b = run_multipool_fleet(&trace, &cfg).unwrap();
        assert_eq!(a, b, "drilled replays must be deterministic");
        assert!(a.fleet.emc_failures > 0, "4/day over 4 days must fire: {a:?}");
        // Every affected VM was either migrated or killed, and every
        // migration's copy window closed with a MigrationDone event.
        assert_eq!(a.fleet.migration_completions, a.fleet.vms_migrated);
        assert!(a.fleet.availability() <= 1.0);
        assert_eq!(
            a.fleet.evacuation_copy_time.is_zero(),
            a.fleet.vms_migrated == 0,
            "migrations charge copy time: {a:?}"
        );
    }

    fn plan(events: Vec<LifecycleEvent>) -> LifecyclePlan {
        LifecyclePlan { events }
    }

    #[test]
    fn an_empty_lifecycle_plan_is_bit_identical_to_no_plan() {
        let trace = small_trace();
        let cfg = config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin);
        let empty = cfg.clone().with_lifecycle(LifecyclePlan::default());
        let a = run_multipool_fleet(&trace, &cfg).unwrap();
        let b = run_multipool_fleet(&trace, &empty).unwrap();
        assert_eq!(a, b, "an empty lifecycle plan must not perturb the replay");
        assert_eq!(a.fleet.vms_drained, 0);
        assert_eq!(a.fleet.vms_rebalanced, 0);
        assert_eq!(a.fleet.emcs_repaired, 0);
        assert_eq!(a.fleet.groups_decommissioned, 0);
        assert_eq!(a.fleet.groups_expanded, 0);
    }

    #[test]
    fn repair_drills_plan_the_same_failure_schedule_as_plain_drills() {
        let topology =
            PoolGroupTopology::new(PodStyle::Octopus, 4, 16, 16, Bytes::from_gib(64)).unwrap();
        let with_repair =
            FailureDrillSpec { kind: DrillKind::EmcWithRepair { mttr_secs: 3_600 }, ..drill(2.0) };
        assert_eq!(
            plan_drill(&drill(2.0), 4 * 86_400, &topology),
            plan_drill(&with_repair, 4 * 86_400, &topology),
            "repairs must be planned without perturbing the failure schedule"
        );
    }

    #[test]
    fn repaired_drills_restore_capacity_mid_replay() {
        let trace = small_trace();
        let base = config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin);
        let plain = base.clone().with_drill(drill(4.0));
        let healed = base.with_drill(FailureDrillSpec {
            kind: DrillKind::EmcWithRepair { mttr_secs: 3_600 },
            ..drill(4.0)
        });
        let a = run_multipool_fleet(&trace, &healed).unwrap();
        let b = run_multipool_fleet(&trace, &healed).unwrap();
        assert_eq!(a, b, "repaired drills must be deterministic");
        let p = run_multipool_fleet(&trace, &plain).unwrap();
        assert_eq!(a.fleet.emc_failures, p.fleet.emc_failures, "same failure schedule");
        assert!(a.fleet.emc_failures > 0, "4/day over 4 days must fire: {a:?}");
        assert!(a.fleet.emcs_repaired > 0, "every failed device is replaced: {a:?}");
        assert!(a.fleet.emcs_repaired <= a.fleet.emc_failures);
    }

    #[test]
    fn decommission_drains_every_vm_without_kills() {
        let trace = small_trace();
        let cfg = config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin).with_lifecycle(
            plan(vec![LifecycleEvent {
                time: 86_400,
                op: LifecycleOp::DecommissionGroup { group: 2 },
            }]),
        );
        let a = run_multipool_fleet(&trace, &cfg).unwrap();
        let b = run_multipool_fleet(&trace, &cfg).unwrap();
        assert_eq!(a, b, "decommissions must be deterministic");
        assert_eq!(a.fleet.groups_decommissioned, 1, "{a:?}");
        assert!(a.fleet.vms_drained > 0, "a day of load leaves VMs to drain: {a:?}");
        assert_eq!(a.fleet.vms_killed, 0, "a graceful drain kills nothing: {a:?}");
        assert_eq!(a.fleet.migration_completions, a.fleet.vms_drained);
        // The drained group's pending async releases all landed before the
        // pod was struck off (the conservation debug-asserts above would
        // have tripped on any double-free).
        assert!(a.per_group[2].releases_completed > 0, "{a:?}");
        // Nothing lands in the group after the drain: it scheduled at most
        // a day's worth of the round-robin share.
        assert!(a.per_group[2].scheduled_vms < a.per_group[3].scheduled_vms, "{a:?}");
    }

    #[test]
    fn expansion_grows_the_pool_and_revives_a_decommissioned_group() {
        let trace = small_trace();
        let base = config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin);
        let decommission_only = base.clone().with_lifecycle(plan(vec![LifecycleEvent {
            time: 86_400,
            op: LifecycleOp::DecommissionGroup { group: 1 },
        }]));
        let replaced = base.with_lifecycle(plan(vec![
            LifecycleEvent { time: 86_400, op: LifecycleOp::DecommissionGroup { group: 1 } },
            LifecycleEvent {
                time: 2 * 86_400,
                op: LifecycleOp::ExpandGroup { group: 1, capacity: Bytes::from_gib(64) },
            },
        ]));
        let gone = run_multipool_fleet(&trace, &decommission_only).unwrap();
        let back = run_multipool_fleet(&trace, &replaced).unwrap();
        assert_eq!(back.fleet.groups_decommissioned, 1);
        assert_eq!(back.fleet.groups_expanded, 1);
        assert_eq!(gone.fleet.groups_expanded, 0);
        // The replacement pod takes arrivals again from day 2 on.
        assert!(
            back.per_group[1].scheduled_vms > gone.per_group[1].scheduled_vms,
            "revived group must schedule post-expansion arrivals: {back:?} vs {gone:?}"
        );
    }

    #[test]
    fn rebalance_moves_vms_off_starved_pods_without_kills() {
        let trace = small_trace();
        // Tiny pools starve quickly; an aggressive spec then rebalances
        // almost every snapshot tick.
        let mut cfg = config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin);
        cfg.control.pool_capacity = Bytes::from_gib(16);
        let cfg =
            cfg.with_rebalance(RebalanceSpec { starved_fraction: 0.9, max_moves_per_pass: 4 });
        let a = run_multipool_fleet(&trace, &cfg).unwrap();
        let b = run_multipool_fleet(&trace, &cfg).unwrap();
        assert_eq!(a, b, "rebalancing must be deterministic");
        assert!(a.fleet.vms_rebalanced > 0, "starved pods must shed load: {a:?}");
        assert_eq!(a.fleet.vms_killed, 0, "a rebalance move can never kill: {a:?}");
        assert_eq!(a.fleet.migration_completions, a.fleet.vms_rebalanced);
        assert!(!a.fleet.evacuation_copy_time.is_zero(), "moves charge copy time");
    }

    /// Tiny pools on an octopus ring: the home pod exhausts quickly and the
    /// borrow rung has reachable lenders to lean on.
    fn borrow_pressure_config() -> MultiPoolConfig {
        let mut cfg = config(PodStyle::Octopus, 4, GroupSchedulerKind::RoundRobin);
        cfg.control.pool_capacity = Bytes::from_gib(16);
        cfg.with_borrowing(true)
    }

    #[test]
    fn borrowing_on_symmetric_pods_is_bit_identical_to_off() {
        let trace = small_trace();
        let base = config(PodStyle::Symmetric, 4, GroupSchedulerKind::RoundRobin);
        let off = run_multipool_fleet(&trace, &base).unwrap();
        let on = run_multipool_fleet(&trace, &base.clone().with_borrowing(true)).unwrap();
        // Symmetric pods reach no lender, so the rung can never fire and the
        // knob must be a pure no-op.
        assert_eq!(off, on);
        assert_eq!(on.fleet.vms_borrowed, 0);
        assert_eq!(on.fleet.borrowed_gib_hours, 0.0);
    }

    #[test]
    fn borrowing_keeps_the_host_home_while_slices_come_from_a_neighbour() {
        let trace = small_trace();
        let cfg = borrow_pressure_config();
        let a = run_multipool_fleet(&trace, &cfg).unwrap();
        let b = run_multipool_fleet(&trace, &cfg).unwrap();
        assert_eq!(a, b, "borrowed replays must be deterministic");
        assert!(a.fleet.vms_borrowed > 0, "tiny pools must force borrows: {a:?}");
        assert!(a.fleet.borrowed_gib_hours > 0.0, "{a:?}");
        // Borrowed GiB-hours are a subset of pooled GiB-hours.
        assert!(a.fleet.borrowed_gib_hours <= a.fleet.pool_gib_hours, "{a:?}");
        let borrowed: u64 = a.per_group.iter().map(|g| g.vms_borrowed).sum();
        assert_eq!(a.fleet.vms_borrowed, borrowed);
        // The borrow rung fires before re-homing, so pressure that the
        // re-home ladder previously absorbed now keeps VMs in their home
        // pod: strictly fewer cross-group placements than borrowing off.
        let off = run_multipool_fleet(&trace, &cfg.clone().with_borrowing(false)).unwrap();
        assert!(
            a.cross_group_placements < off.cross_group_placements,
            "borrowing must absorb re-homes: {} vs {}",
            a.cross_group_placements,
            off.cross_group_placements
        );
        assert_eq!(
            a.fleet.scheduled_vms + a.fleet.rejected_vms,
            off.fleet.scheduled_vms + off.fleet.rejected_vms,
            "both knob settings see the same arrival stream"
        );
    }

    #[test]
    fn borrowing_survives_composed_drills_with_conservation() {
        let trace = small_trace();
        // EMC failures, repairs, a decommission, and rebalancing all at
        // once, with cross-pod leases in flight: the per-event conservation
        // debug-asserts (including lent-slice accounting) run throughout.
        let cfg = borrow_pressure_config()
            .with_drill(FailureDrillSpec {
                rate_per_day: 4.0,
                kind: DrillKind::EmcWithRepair { mttr_secs: 3_600 },
                seed: 99,
            })
            .with_lifecycle(plan(vec![LifecycleEvent {
                time: 2 * 86_400,
                op: LifecycleOp::DecommissionGroup { group: 2 },
            }]))
            .with_rebalance(RebalanceSpec { starved_fraction: 0.5, max_moves_per_pass: 2 });
        let a = run_multipool_fleet(&trace, &cfg).unwrap();
        let b = run_multipool_fleet(&trace, &cfg).unwrap();
        assert_eq!(a, b, "drilled borrowed replays must be deterministic");
        assert!(a.fleet.vms_borrowed > 0, "{a:?}");
        assert!(a.fleet.emc_failures > 0, "{a:?}");
        assert_eq!(a.fleet.groups_decommissioned, 1, "{a:?}");
        assert_eq!(
            a.fleet.migration_completions,
            a.fleet.vms_migrated + a.fleet.vms_drained + a.fleet.vms_rebalanced,
            "{a:?}"
        );
    }

    #[test]
    fn decommissioning_a_lender_recalls_its_leases() {
        let trace = small_trace();
        // Decommission a pod early, while it still holds outstanding leases
        // to neighbours: the drain must recall every lent slice before the
        // pod is struck off (the end-of-replay asserts would trip on any
        // leaked lease).
        let cfg = borrow_pressure_config().with_lifecycle(plan(vec![LifecycleEvent {
            time: 86_400,
            op: LifecycleOp::DecommissionGroup { group: 1 },
        }]));
        let a = run_multipool_fleet(&trace, &cfg).unwrap();
        let b = run_multipool_fleet(&trace, &cfg).unwrap();
        assert_eq!(a, b, "lender decommissions must be deterministic");
        assert_eq!(a.fleet.groups_decommissioned, 1, "{a:?}");
        assert!(a.fleet.vms_borrowed > 0, "{a:?}");
    }

    #[test]
    fn borrowing_runs_on_every_pod_style_with_reach() {
        let trace = small_trace();
        for pod in
            [PodStyle::Octopus, PodStyle::KRegular { k: 2 }, PodStyle::PodOfPods { cluster: 2 }]
        {
            let mut cfg = config(pod, 4, GroupSchedulerKind::RoundRobin);
            cfg.control.pool_capacity = Bytes::from_gib(16);
            let cfg = cfg.with_borrowing(true);
            let a = run_multipool_fleet(&trace, &cfg).unwrap();
            let b = run_multipool_fleet(&trace, &cfg).unwrap();
            assert_eq!(a, b, "{pod:?} borrowed replay must be deterministic");
            assert!(a.fleet.vms_borrowed > 0, "{pod:?} must borrow under pressure: {a:?}");
        }
    }

    #[test]
    fn lifecycle_sweeps_run_cells_in_order_and_deterministically() {
        let trace = small_trace();
        let cell = MultiPoolSweepSpec {
            pod: PodStyle::Octopus,
            groups: 4,
            pool_fraction: 0.20,
            scheduler: GroupSchedulerKind::RoundRobin,
            borrowing: false,
        };
        let specs = vec![
            LifecycleSweepSpec { cell, drill: None, lifecycle: None, rebalance: None },
            LifecycleSweepSpec {
                cell,
                drill: Some(FailureDrillSpec {
                    rate_per_day: 4.0,
                    kind: DrillKind::EmcWithRepair { mttr_secs: 3_600 },
                    seed: 99,
                }),
                lifecycle: Some(plan(vec![LifecycleEvent {
                    time: 86_400,
                    op: LifecycleOp::DecommissionGroup { group: 2 },
                }])),
                rebalance: Some(RebalanceSpec { starved_fraction: 0.15, max_moves_per_pass: 2 }),
            },
        ];
        let a = lifecycle_sweep(&trace, &specs, 7).unwrap();
        let b = lifecycle_sweep(&trace, &specs, 7).unwrap();
        assert_eq!(a, b, "lifecycle sweeps must be deterministic");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].spec, specs[0]);
        assert_eq!(
            a[0].outcome,
            run_multipool_fleet(&trace, &lifecycle_config(&trace, &specs[0], 7)).unwrap()
        );
        assert!(a[1].outcome.fleet.emc_failures > 0);
        assert_eq!(a[1].outcome.fleet.groups_decommissioned, 1);
    }
}
