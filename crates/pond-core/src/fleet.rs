//! The event-driven fleet replay: [`PondControlPlane`] driven by
//! `cluster-sim`'s time-ordered event core (§6.5, Figures 19–20).
//!
//! The paper's headline DRAM-savings numbers come from replaying a cloud VM
//! trace through the *full* Pond pipeline, not through a static local/pool
//! split. This module closes that loop: every arrival gets a live
//! [`crate::policy::PondDecision`] from the trained prediction models, Pool
//! Manager slice offlining completes as first-class
//! [`Event::Release`](cluster_sim::event::Event) events, and periodic QoS
//! passes reconfigure mispredicted VMs back to all-local memory with their
//! 50 ms/GiB copy cost charged on the event timeline before the freed slices
//! start offlining.
//!
//! The event stream is the contract documented in [`cluster_sim::event`]: at
//! equal times departures apply first, then release completions, then the
//! QoS tick, then arrivals — so a QoS pass never sees a departed VM, an
//! arrival allocates from a buffer that reflects every release due by its
//! arrival time, and the whole replay is deterministic. Pool-accounting
//! conservation (every slice is free, pinned, or mid-offlining) is
//! debug-asserted after every event.

use crate::arena::LiveVmArena;
use crate::control_plane::{ControlPlaneConfig, PondControlPlane};
use crate::error::PondError;
use crate::policy::PondPolicy;
use cluster_sim::event::{Event, EventQueue, ReferenceEventQueue};
use cluster_sim::source::{ArrivalSource, TraceCursor, TraceHeader};
use cluster_sim::sweep;
use cluster_sim::trace::ClusterTrace;
use cxl_hw::units::Bytes;
use hypervisor_sim::vm::VmId;
use pond_metrics::{
    DecisionTrace, FallbackReason, GroupSample, LadderRung, NullObserver, QosPassTrace,
    ReplayObserver,
};
use serde::{Deserialize, Serialize};
use std::time::Duration;
use workload_model::spill::SpillModel;
use workload_model::WorkloadSuite;

/// Configuration of one fleet replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The control plane under test (hosts, pool, policy, mitigation budget).
    pub control: ControlPlaneConfig,
    /// Seconds between QoS-monitoring passes (the event core's snapshot
    /// cadence; `0` disables monitoring).
    pub qos_interval: u64,
    /// Seed for model training and telemetry sampling.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            control: ControlPlaneConfig { fallback_all_local: true, ..Default::default() },
            qos_interval: 6 * 3600,
            seed: 19,
        }
    }
}

impl FleetConfig {
    /// A fleet sized to a trace: one control-plane host per trace server,
    /// with the trace's total DRAM spread evenly across the hosts and the
    /// pool holding `pool_fraction` of that DRAM as extra pooled capacity.
    ///
    /// Fleets larger than the pool's CXL port count are honest now: at most
    /// `ports` hosts hold slices concurrently, but a drained host's port
    /// detaches (see `cxl_hw::pool`), so any number of hosts can cycle
    /// through the pool over the trace. Hosts that cannot reach a port at
    /// arrival time fall back to all-local placements.
    ///
    /// This is the knob Figures 19–20 sweep: `pool_fraction` is the pool
    /// percentage, and the replay reports the DRAM savings and mitigation
    /// rate the full pipeline achieves at that size.
    pub fn for_trace(trace: &ClusterTrace, pool_fraction: f64, seed: u64) -> Self {
        Self::for_header(&TraceHeader::of_trace(trace), pool_fraction, seed)
    }

    /// [`FleetConfig::for_trace`] from a [`TraceHeader`] alone, so streaming
    /// replays can size the fleet without materializing any requests.
    pub fn for_header(header: &TraceHeader, pool_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pool_fraction) && pool_fraction.is_finite(),
            "pool fraction must be in [0, 1]"
        );
        let hosts = header.servers.clamp(1, u64::from(u16::MAX) as u32) as u16;
        let fleet_dram = Bytes::from_gib(header.dram_per_server.as_gib() * header.servers as u64);
        let local_per_host = Bytes::from_gib(fleet_dram.as_gib() / hosts as u64);
        let pool_capacity = Bytes::from_gib(fleet_dram.scaled(pool_fraction).slices_floor().max(1));
        FleetConfig {
            control: ControlPlaneConfig {
                hosts,
                local_dram_per_host: local_per_host,
                pool_capacity,
                fallback_all_local: true,
                ..Default::default()
            },
            ..Default::default()
        }
        .with_seed(seed)
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Aggregated results of one fleet replay.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// VMs placed by the control plane.
    pub scheduled_vms: u64,
    /// VMs that could not be placed (no host had enough local DRAM, or the
    /// pool was exhausted with the all-local fallback disabled).
    pub rejected_vms: u64,
    /// Placements that fell back to all-local memory because the pool buffer
    /// could not cover the predicted pool share.
    pub fallback_all_local: u64,
    /// VMs whose ground-truth slowdown exceeded the PDM.
    pub violations: u64,
    /// VMs the QoS monitor reconfigured to all-local memory.
    pub mitigations: u64,
    /// Total pool→local copy time the mitigations charged.
    pub mitigation_copy_time: Duration,
    /// Reconfiguration-copy completion events processed: each mitigation's
    /// degraded-mode window ends with one first-class `ReconfigDone` event.
    pub reconfig_completions: u64,
    /// Peak number of mitigation copies in flight at once — the widest
    /// degraded-mode window any snapshot could observe.
    pub peak_degraded_vms: u64,
    /// QoS passes executed.
    pub qos_passes: u64,
    /// Release-completion events processed.
    pub releases_completed: u64,
    /// EMC failures injected by a failure drill (zero without one).
    pub emc_failures: u64,
    /// VMs that survived an EMC failure by migrating — re-homed to a
    /// reachable pod (pooled or all-local) with their copy charged on the
    /// event timeline. Attributed to the group that suffered the failure.
    pub vms_migrated: u64,
    /// VMs lost to an EMC failure: no reachable pod could re-home them.
    /// Attributed to the group that suffered the failure.
    pub vms_killed: u64,
    /// Migration-copy completion events processed: each migrated VM's
    /// in-migration degraded window ends with one `MigrationDone` event.
    pub migration_completions: u64,
    /// Total evacuation copy time the migrations charged (50 ms/GiB of each
    /// migrated VM's full memory, like the QoS mitigation copies).
    pub evacuation_copy_time: Duration,
    /// VMs drained off a decommissioning group by migration. Disjoint from
    /// [`FleetOutcome::vms_migrated`] (failure evacuations): a graceful
    /// decommission never kills, it drains. Attributed to the group that
    /// was decommissioned.
    pub vms_drained: u64,
    /// VMs moved by proactive QoS-cadence rebalancing — migrated from a
    /// pool-starved pod to its ring neighbour before a failure or arrival
    /// forces the issue. Disjoint from both
    /// [`FleetOutcome::vms_migrated`] and [`FleetOutcome::vms_drained`].
    pub vms_rebalanced: u64,
    /// EMC repairs applied by a lifecycle plan: failed devices whose
    /// capacity rejoined the pool (healthy-device repairs are no-ops and
    /// not counted).
    pub emcs_repaired: u64,
    /// Pool groups that completed a graceful decommission: drained of VMs
    /// and pending releases, then taken out of service.
    pub groups_decommissioned: u64,
    /// Live pool-group expansions applied: new EMC capacity attached
    /// mid-replay (a decommissioned group re-onlined by a replacement pod
    /// counts here too).
    pub groups_expanded: u64,
    /// Distinct hosts that held pool slices at some point. With the
    /// host-port lifecycle this can exceed the pool's CXL port count: hosts
    /// cycle through ports as they drain.
    pub pooled_host_count: u64,
    /// Sum over hosts of each host's peak pinned local memory.
    pub sum_local_peaks: Bytes,
    /// Sum over hosts of each host's peak pinned pool memory — what that
    /// memory would cost as dedicated per-host DRAM.
    pub sum_host_pool_peaks: Bytes,
    /// Sum over hosts of each host's peak total (local + pool) memory — the
    /// DRAM a pool-less provisioning would need.
    pub sum_total_peaks: Bytes,
    /// Peak pool capacity assigned to hosts, *including* slices still
    /// offlining — the pool DRAM that actually has to be provisioned. The
    /// asynchronous-release tail lives here: slow offlining inflates this
    /// peak and erodes the savings.
    pub pool_peak: Bytes,
    /// GiB-hours of VM memory served from the pool. Mitigated VMs stop
    /// accruing at their reconfiguration: the unserved remainder of their
    /// lifetime is deducted when the QoS pass moves them off the pool.
    pub pool_gib_hours: f64,
    /// GiB-hours of VM memory overall.
    pub total_gib_hours: f64,
    /// VMs placed through the cross-pod BorrowedNeighbour rung: the host
    /// stayed in the home pod but the pool slices came from a reachable
    /// lender pod's pool. Zero whenever borrowing is disabled.
    pub vms_borrowed: u64,
    /// GiB-hours of VM memory served from *borrowed* (cross-pod) slices — a
    /// subset of [`FleetOutcome::pool_gib_hours`], attributed to the
    /// borrower group whose VM leaned on the lease.
    pub borrowed_gib_hours: f64,
}

impl FleetOutcome {
    /// DRAM required without pooling: every host provisioned for its own
    /// combined peak.
    pub fn baseline_dram(&self) -> Bytes {
        self.sum_total_peaks
    }

    /// DRAM required with pooling: the baseline minus the sharing gain (what
    /// the pool-eligible memory would cost per host, less what the shared
    /// pool must actually provision at its peak — offlining tail included).
    pub fn required_dram(&self) -> Bytes {
        let sharing_gain = self.sum_host_pool_peaks.saturating_sub(self.pool_peak);
        self.sum_total_peaks.saturating_sub(sharing_gain)
    }

    /// Relative DRAM requirement (1.0 = no savings, lower is better).
    pub fn required_dram_fraction(&self) -> f64 {
        if self.baseline_dram().is_zero() {
            1.0
        } else {
            self.required_dram().as_u64() as f64 / self.baseline_dram().as_u64() as f64
        }
    }

    /// DRAM savings relative to the pool-less baseline.
    pub fn dram_savings_fraction(&self) -> f64 {
        1.0 - self.required_dram_fraction()
    }

    /// Fraction of VM memory GiB-hours served from the pool.
    pub fn pool_dram_fraction(&self) -> f64 {
        if self.total_gib_hours == 0.0 {
            0.0
        } else {
            self.pool_gib_hours / self.total_gib_hours
        }
    }

    /// Fraction of scheduled VMs whose slowdown exceeded the PDM.
    pub fn violation_fraction(&self) -> f64 {
        if self.scheduled_vms == 0 {
            0.0
        } else {
            self.violations as f64 / self.scheduled_vms as f64
        }
    }

    /// Fraction of scheduled VMs the QoS monitor reconfigured.
    pub fn mitigation_rate(&self) -> f64 {
        if self.scheduled_vms == 0 {
            0.0
        } else {
            self.mitigations as f64 / self.scheduled_vms as f64
        }
    }

    /// Availability through the replay's failure drill: the fraction of
    /// scheduled VMs that were *not* killed by a memory-device failure
    /// (1.0 when nothing was scheduled or no drill ran). This is the §4.1
    /// blast-radius argument made measurable: pooling bounds how many VMs
    /// one EMC can take down, and pod overlap bounds how many of those
    /// actually die rather than migrate.
    pub fn availability(&self) -> f64 {
        if self.scheduled_vms == 0 {
            1.0
        } else {
            1.0 - self.vms_killed as f64 / self.scheduled_vms as f64
        }
    }

    /// Fraction of failure-affected VMs that survived by migrating
    /// (1.0 when no VM was ever affected).
    pub fn survival_rate(&self) -> f64 {
        let affected = self.vms_migrated + self.vms_killed;
        if affected == 0 {
            1.0
        } else {
            self.vms_migrated as f64 / affected as f64
        }
    }

    /// Adds another outcome's tallies into this one, field by field — the
    /// multi-pool replay builds its fleet aggregate by absorbing every
    /// per-group outcome. Lives next to the struct (and destructures it) so
    /// a future field cannot be silently dropped from the aggregate. The
    /// two non-additive fields are overwritten by the caller afterwards:
    /// `qos_passes` counts shared snapshot ticks once per tick, and
    /// `peak_degraded_vms` is a fleet-wide peak, not a sum of per-group
    /// peaks.
    pub(crate) fn absorb(&mut self, other: &FleetOutcome) {
        let FleetOutcome {
            scheduled_vms,
            rejected_vms,
            fallback_all_local,
            violations,
            mitigations,
            mitigation_copy_time,
            reconfig_completions,
            peak_degraded_vms,
            qos_passes,
            releases_completed,
            emc_failures,
            vms_migrated,
            vms_killed,
            migration_completions,
            evacuation_copy_time,
            vms_drained,
            vms_rebalanced,
            emcs_repaired,
            groups_decommissioned,
            groups_expanded,
            pooled_host_count,
            sum_local_peaks,
            sum_host_pool_peaks,
            sum_total_peaks,
            pool_peak,
            pool_gib_hours,
            total_gib_hours,
            vms_borrowed,
            borrowed_gib_hours,
        } = other;
        self.scheduled_vms += scheduled_vms;
        self.rejected_vms += rejected_vms;
        self.fallback_all_local += fallback_all_local;
        self.violations += violations;
        self.mitigations += mitigations;
        self.mitigation_copy_time += *mitigation_copy_time;
        self.reconfig_completions += reconfig_completions;
        self.peak_degraded_vms += peak_degraded_vms;
        self.qos_passes += qos_passes;
        self.releases_completed += releases_completed;
        self.emc_failures += emc_failures;
        self.vms_migrated += vms_migrated;
        self.vms_killed += vms_killed;
        self.migration_completions += migration_completions;
        self.evacuation_copy_time += *evacuation_copy_time;
        self.vms_drained += vms_drained;
        self.vms_rebalanced += vms_rebalanced;
        self.emcs_repaired += emcs_repaired;
        self.groups_decommissioned += groups_decommissioned;
        self.groups_expanded += groups_expanded;
        self.pooled_host_count += pooled_host_count;
        self.sum_local_peaks += *sum_local_peaks;
        self.sum_host_pool_peaks += *sum_host_pool_peaks;
        self.sum_total_peaks += *sum_total_peaks;
        self.pool_peak += *pool_peak;
        self.pool_gib_hours += pool_gib_hours;
        self.total_gib_hours += total_gib_hours;
        self.vms_borrowed += vms_borrowed;
        self.borrowed_gib_hours += borrowed_gib_hours;
    }
}

/// The stable human-readable block every fig bin prints for a headline
/// outcome: one aligned two-column summary, availability and survival as
/// percentages, DRAM in `Bytes` units. Scripts that scrape it can rely on
/// the `label value` shape of each column; new rows may be appended but
/// existing ones keep their labels.
impl std::fmt::Display for FleetOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = |fraction: f64| format!("{:.2}%", fraction * 100.0);
        let rows: [(&str, String, &str, String); 10] = [
            (
                "scheduled",
                self.scheduled_vms.to_string(),
                "rejected",
                self.rejected_vms.to_string(),
            ),
            ("availability", pct(self.availability()), "survival", pct(self.survival_rate())),
            (
                "dram savings",
                pct(self.dram_savings_fraction()),
                "pool share",
                pct(self.pool_dram_fraction()),
            ),
            (
                "required dram",
                self.required_dram().to_string(),
                "baseline dram",
                self.baseline_dram().to_string(),
            ),
            (
                "fallbacks",
                self.fallback_all_local.to_string(),
                "violations",
                self.violations.to_string(),
            ),
            (
                "mitigations",
                self.mitigations.to_string(),
                "mitigation copy",
                format!("{}s", self.mitigation_copy_time.as_secs()),
            ),
            (
                "emc failures",
                self.emc_failures.to_string(),
                "emcs repaired",
                self.emcs_repaired.to_string(),
            ),
            (
                "migrated/killed",
                format!("{}/{}", self.vms_migrated, self.vms_killed),
                "drained/rebalanced",
                format!("{}/{}", self.vms_drained, self.vms_rebalanced),
            ),
            (
                "decommissions",
                self.groups_decommissioned.to_string(),
                "expansions",
                self.groups_expanded.to_string(),
            ),
            (
                "borrowed vms",
                self.vms_borrowed.to_string(),
                "borrowed gib-h",
                format!("{:.1}", self.borrowed_gib_hours),
            ),
        ];
        for (i, (left, lv, right, rv)) in rows.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {left:<16} {lv:>12}    {right:<18} {rv:>12}")?;
        }
        Ok(())
    }
}

/// Event times are whole seconds; releases and reconfiguration copies
/// complete at millisecond granularity, so their events land on the next
/// whole second. Shared with [`crate::multipool`], which must round
/// identically for the single-group equivalence to hold.
pub(crate) fn ceil_secs(duration: Duration) -> u64 {
    duration.as_secs() + u64::from(duration.subsec_nanos() > 0)
}

/// Decrements an in-flight event counter that a completion event just
/// closed. A double decrement means a completion was attributed to the
/// wrong group (or delivered twice) — that must fail loudly in debug builds
/// instead of being masked by saturation; release builds still saturate
/// rather than wrap. Shared by [`run_fleet`] and
/// [`crate::multipool::run_multipool_fleet`].
pub(crate) fn checked_decrement(counter: &mut u64, what: &str) {
    debug_assert!(*counter > 0, "double decrement of {what}: a completion event was misattributed");
    *counter = counter.saturating_sub(1);
}

/// Which shared-queue event a replay just scheduled — the attribution hook
/// the multi-pool replay uses to route the completion back to its group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScheduledEvent {
    /// An asynchronous slice-release completion.
    Release,
    /// A mitigation copy completion.
    ReconfigDone,
}

/// The per-event outcome accounting shared by [`run_fleet`] and
/// [`crate::multipool::run_multipool_fleet`]. Both replays charge
/// placements, mitigations, and provisioning peaks through these helpers,
/// so the two loops cannot silently diverge — which is what keeps the
/// single-group multipool replay bit-for-bit equal to the single-pool one.
#[derive(Debug)]
pub(crate) struct ReplayAccounting {
    scenario: cxl_hw::latency::LatencyScenario,
    pdm: f64,
    suite: WorkloadSuite,
    spill: SpillModel,
}

impl ReplayAccounting {
    pub(crate) fn new(config: &crate::control_plane::ControlPlaneConfig) -> Self {
        ReplayAccounting {
            scenario: config.policy.scenario,
            pdm: config.policy.pdm,
            suite: WorkloadSuite::standard(),
            spill: SpillModel::default(),
        }
    }

    /// Charges one successful placement: the ground-truth QoS outcome (via
    /// the same spill model the cluster simulator uses) and the GiB-hour
    /// accounting.
    pub(crate) fn record_placement(
        &self,
        outcome: &mut FleetOutcome,
        request: &cluster_sim::trace::VmRequest,
        summary: &crate::control_plane::PlacementSummary,
    ) {
        outcome.scheduled_vms += 1;
        outcome.fallback_all_local += u64::from(summary.fallback_all_local);

        let workload = self
            .suite
            .at(request.workload_index % self.suite.len())
            .expect("workload index is taken modulo the suite size");
        let fraction = SpillModel::spill_fraction(request.touched_memory(), summary.local);
        let slowdown = self.spill.spill_slowdown(workload, self.scenario, fraction);
        outcome.violations += u64::from(slowdown > self.pdm);

        let hours = request.lifetime as f64 / 3600.0;
        outcome.pool_gib_hours += summary.pool.as_gib_f64() * hours;
        outcome.total_gib_hours += request.memory.as_gib_f64() * hours;
    }

    /// Charges one QoS pass: mitigation counters, the degraded-mode window
    /// (each copy completion becomes a first-class event so snapshots
    /// observe the window, not just the accumulated total), the release of
    /// the freed slices, and the GiB-hour take-back for the pool time the
    /// mitigated VMs will no longer serve. `schedule` must queue the event
    /// at the given time (and may attribute it) — taking a closure rather
    /// than a queue lets every replay variant, whichever queue it runs on,
    /// share this accounting.
    pub(crate) fn record_qos_pass(
        &self,
        outcome: &mut FleetOutcome,
        pass: crate::control_plane::QosPassReport,
        time: u64,
        departure_of: impl Fn(u64) -> Option<u64>,
        degraded: &mut u64,
        mut schedule: impl FnMut(ScheduledEvent, u64),
    ) {
        outcome.mitigations += pass.reconfigured;
        outcome.mitigation_copy_time += pass.copy_time;
        outcome.qos_passes += 1;
        for mitigation in pass.mitigated {
            schedule(ScheduledEvent::ReconfigDone, ceil_secs(mitigation.copy_done));
            *degraded += 1;
            outcome.peak_degraded_vms = outcome.peak_degraded_vms.max(*degraded);
            if let Some(ready) = mitigation.release_ready {
                schedule(ScheduledEvent::Release, ceil_secs(ready));
            }
            // The VM was charged for its whole lifetime at arrival; take
            // back the pool GiB-hours it will no longer serve.
            let remaining =
                departure_of(mitigation.vm.0).map_or(0, |departure| departure.saturating_sub(time));
            outcome.pool_gib_hours -= mitigation.moved.as_gib_f64() * remaining as f64 / 3600.0;
        }
    }
}

/// Tracks one plane's provisioning peaks after an event by scanning every
/// host — the pre-refactor O(hosts)-per-event accounting, retained for the
/// reference replay that anchors the equivalence tests and the throughput
/// bench.
pub(crate) fn track_peaks(
    plane: &PondControlPlane,
    outcome: &mut FleetOutcome,
    peak_local: &mut [Bytes],
    peak_host_pool: &mut [Bytes],
    peak_total: &mut [Bytes],
) {
    for (i, host) in plane.hosts().iter().enumerate() {
        let local = host.local_allocated();
        let host_pool = host.pool_allocated();
        peak_local[i] = peak_local[i].max(local);
        peak_host_pool[i] = peak_host_pool[i].max(host_pool);
        peak_total[i] = peak_total[i].max(local + host_pool);
    }
    outcome.pool_peak = outcome.pool_peak.max(plane.pool().pool().assigned_capacity());
}

/// Incremental peak tracking: samples only the hosts the last event touched.
/// Bit-identical to [`track_peaks`] — an untouched host's allocations are
/// unchanged since its previous sample, so resampling it cannot move a
/// running maximum — and the pool's assigned capacity only grows at
/// placements, which always mark the plane pool-dirty, so the pool peak is
/// resampled exactly when it can move.
pub(crate) fn track_peaks_touched(
    plane: &mut PondControlPlane,
    outcome: &mut FleetOutcome,
    peak_local: &mut [Bytes],
    peak_host_pool: &mut [Bytes],
    peak_total: &mut [Bytes],
) {
    let pool_dirty = plane.drain_touched(|i, host| {
        let local = host.local_allocated();
        let host_pool = host.pool_allocated();
        peak_local[i] = peak_local[i].max(local);
        peak_host_pool[i] = peak_host_pool[i].max(host_pool);
        peak_total[i] = peak_total[i].max(local + host_pool);
    });
    if pool_dirty {
        outcome.pool_peak = outcome.pool_peak.max(plane.pool().pool().assigned_capacity());
    }
}

/// Replays a trace through the full Pond control plane on the time-ordered
/// event core and returns the aggregated outcome.
///
/// # Errors
///
/// Propagates control-plane construction failures (unsupported pool
/// topology) and any error other than the expected placement failures
/// (`NoFeasibleHost`, and `PoolExhausted` when the fallback is disabled).
pub fn run_fleet(trace: &ClusterTrace, config: &FleetConfig) -> Result<FleetOutcome, PondError> {
    let policy = PondPolicy::train(trace, &config.control.policy, config.seed);
    run_fleet_with_policy(trace, config, policy)
}

/// [`run_fleet`] with an already-trained policy, so callers that replay the
/// same trace many times (sweeps, benches) pay the training cost once.
///
/// # Errors
///
/// Same as [`run_fleet`].
pub fn run_fleet_with_policy(
    trace: &ClusterTrace,
    config: &FleetConfig,
    policy: PondPolicy,
) -> Result<FleetOutcome, PondError> {
    run_fleet_source(TraceCursor::new(trace), config, policy)
}

/// [`run_fleet`] over any streaming [`ArrivalSource`]: arrivals come off the
/// source cursor one at a time, departures live in an incremental per-second
/// calendar, and every per-VM fact sits in a [`LiveVmArena`] slot that is
/// recycled at departure — so replay memory is O(live VMs + hosts), not
/// O(trace length). Bit-identical to the materialized replay on the same
/// request stream: arrival ordinals feed the same simultaneous-departure
/// tie-break the trace index used to.
///
/// # Errors
///
/// Same as [`run_fleet`], plus [`PondError::TraceStream`] when the source
/// fails mid-replay (malformed or unreadable stream).
pub fn run_fleet_source<S: ArrivalSource>(
    source: S,
    config: &FleetConfig,
    policy: PondPolicy,
) -> Result<FleetOutcome, PondError> {
    run_fleet_source_observed(source, config, policy, &mut NullObserver)
}

/// [`run_fleet_source`] with a [`ReplayObserver`] wired into the loop: the
/// observer sees every popped event, every placement decision, every QoS
/// pass, and a single-group [`GroupSample`] at each snapshot tick.
///
/// Observers are read-only, so the observed outcome is bit-identical to
/// [`run_fleet_source`] on the same `(source, config, policy)`. With
/// [`NullObserver`] (whose [`ReplayObserver::ENABLED`] is `false`) every
/// hook and payload construction compiles out, so [`run_fleet_source`]
/// monomorphizes to the pre-observability loop — which is what keeps the
/// `bench_fleet` throughput floor honest.
///
/// # Errors
///
/// Same as [`run_fleet_source`].
pub fn run_fleet_source_observed<S: ArrivalSource, O: ReplayObserver>(
    source: S,
    config: &FleetConfig,
    policy: PondPolicy,
    observer: &mut O,
) -> Result<FleetOutcome, PondError> {
    let mut plane = PondControlPlane::with_policy(config.control.clone(), policy)?;
    let accounting = ReplayAccounting::new(&config.control);

    let hosts = plane.hosts().len();
    let mut peak_local = vec![Bytes::ZERO; hosts];
    let mut peak_host_pool = vec![Bytes::ZERO; hosts];
    let mut peak_total = vec![Bytes::ZERO; hosts];
    let mut outcome = FleetOutcome::default();
    let mut arena = LiveVmArena::new();
    let mut pooled_host = vec![false; hosts];
    let mut pooled_host_count: u64 = 0;
    let mut degraded: u64 = 0;

    let mut events = EventQueue::new(source, config.qos_interval);
    while let Some(event) = events.next_event() {
        if O::ENABLED {
            observer.on_event(&event);
        }
        let now = Duration::from_secs(event.time());
        let mut snapshot_time = None;
        match event {
            Event::Arrival { request_index, .. } => {
                let request = events.take_arrival();
                match plane.handle_request(&request, now) {
                    Ok(summary) => {
                        accounting.record_placement(&mut outcome, &request, &summary);
                        if O::ENABLED {
                            let (rung, reason) = if summary.fallback_all_local {
                                (LadderRung::AllLocalHome, FallbackReason::PoolRungsExhausted)
                            } else {
                                (LadderRung::PooledHome, FallbackReason::None)
                            };
                            observer.on_decision(&DecisionTrace {
                                time: request.arrival,
                                vm: Some(summary.vm.0),
                                home_group: 0,
                                group: Some(0),
                                rung,
                                reason,
                                memory: request.memory,
                                lifetime: request.lifetime,
                            });
                        }
                        if !summary.pool.is_zero() && !pooled_host[summary.host] {
                            pooled_host[summary.host] = true;
                            pooled_host_count += 1;
                        }
                        let departure = request.departure();
                        let token = arena.alloc(request, request_index as u64);
                        events.schedule_departure(departure, request_index as u64, token);
                    }
                    Err(PondError::NoFeasibleHost { .. })
                    | Err(PondError::PoolExhausted { .. }) => {
                        outcome.rejected_vms += 1;
                        if O::ENABLED {
                            observer.on_decision(&DecisionTrace {
                                time: request.arrival,
                                vm: None,
                                home_group: 0,
                                group: None,
                                rung: LadderRung::Rejected,
                                reason: FallbackReason::NoRungHeld,
                                memory: request.memory,
                                lifetime: request.lifetime,
                            });
                        }
                    }
                    Err(other) => return Err(other),
                }
            }
            Event::Departure { token, .. } => {
                // Each token was scheduled exactly once at its allocation,
                // so the slot is live and this free cannot alias.
                let vm = VmId(arena.request(token).id);
                arena.free(token);
                if let Some(ready) = plane.handle_departure(vm, now)? {
                    events.schedule_release(ceil_secs(ready));
                }
            }
            Event::Release { .. } => {
                plane.complete_releases(now);
                outcome.releases_completed += 1;
            }
            Event::ReconfigDone { .. } => {
                checked_decrement(&mut degraded, "in-flight mitigation copies");
                outcome.reconfig_completions += 1;
            }
            // The single-pool replay runs no failure or lifecycle drills and
            // therefore never schedules failure, lifecycle, or migration
            // events.
            Event::EmcFailure { .. }
            | Event::EmcRepair { .. }
            | Event::GroupDecommission { .. }
            | Event::GroupExpansion { .. }
            | Event::MigrationDone { .. } => {
                unreachable!("run_fleet schedules no failure-drill or lifecycle events")
            }
            Event::Snapshot { time } => {
                let pass = plane.run_qos_pass(now)?;
                if O::ENABLED {
                    observer.on_qos_pass(&QosPassTrace {
                        time,
                        group: 0,
                        reconfigured: pass.reconfigured,
                        copy_time: pass.copy_time,
                    });
                    snapshot_time = Some(time);
                }
                accounting.record_qos_pass(
                    &mut outcome,
                    pass,
                    time,
                    |id| arena.departure_of(id),
                    &mut degraded,
                    |kind, at| match kind {
                        ScheduledEvent::Release => events.schedule_release(at),
                        ScheduledEvent::ReconfigDone => events.schedule_reconfig_done(at),
                    },
                );
                // The full O(pool + hosts) conservation scan runs only at
                // snapshot ticks (and end of replay) in debug builds.
                #[cfg(debug_assertions)]
                plane.assert_pool_conserved_full();
            }
        }

        track_peaks_touched(
            &mut plane,
            &mut outcome,
            &mut peak_local,
            &mut peak_host_pool,
            &mut peak_total,
        );

        if O::ENABLED {
            if let Some(time) = snapshot_time {
                let sample = GroupSample {
                    group: 0,
                    state: cxl_hw::pool::GroupState::Online,
                    pool_free: plane.pool().available(),
                    pool_offlining: plane.pool().pending_release(),
                    pool_pinned: plane.pinned_pool(),
                    pool_live: plane.pool().pool().live_capacity(),
                    pool_lent: plane.lent_pool(),
                    pool_borrowed: plane.borrowed_pool(),
                    running_vms: plane.running_vms() as u64,
                    scheduled_vms: outcome.scheduled_vms,
                    rejected_vms: outcome.rejected_vms,
                    vms_killed: outcome.vms_killed,
                    sum_total_peaks: peak_total.iter().copied().sum(),
                    sum_host_pool_peaks: peak_host_pool.iter().copied().sum(),
                    pool_peak: outcome.pool_peak,
                };
                observer.on_snapshot(time, std::slice::from_ref(&sample));
            }
        }

        // Conservation of pool accounting, checked at every event in debug
        // builds: free + offlining + pinned must equal the pool's capacity.
        #[cfg(debug_assertions)]
        plane.assert_pool_conserved();
    }
    if let Some(error) = events.source_error() {
        return Err(PondError::TraceStream(error.to_string()));
    }

    #[cfg(debug_assertions)]
    plane.assert_pool_conserved_full();
    debug_assert_eq!(plane.running_vms(), 0, "every placed VM must have departed");
    debug_assert!(
        plane.pool().pending_release().is_zero(),
        "every release event must have been delivered and processed"
    );
    debug_assert_eq!(degraded, 0, "every mitigation copy must have completed as an event");
    debug_assert_eq!(
        outcome.reconfig_completions, outcome.mitigations,
        "one ReconfigDone event per mitigation"
    );

    outcome.pooled_host_count = pooled_host_count;
    outcome.sum_local_peaks = peak_local.iter().copied().sum();
    outcome.sum_host_pool_peaks = peak_host_pool.iter().copied().sum();
    outcome.sum_total_peaks = peak_total.iter().copied().sum();
    Ok(outcome)
}

/// The pre-refactor replay loop, retained deliberately: the five-heap
/// [`ReferenceEventQueue`], a full host scan after every event, and hash-map
/// bookkeeping for placements and departures. The equivalence tests assert
/// the optimized [`run_fleet`] matches this bit for bit, and the throughput
/// bench measures its speedup against it.
///
/// # Errors
///
/// Same as [`run_fleet`].
pub fn run_fleet_reference(
    trace: &ClusterTrace,
    config: &FleetConfig,
) -> Result<FleetOutcome, PondError> {
    let policy = PondPolicy::train(trace, &config.control.policy, config.seed);
    run_fleet_reference_with_policy(trace, config, policy)
}

/// [`run_fleet_reference`] with an already-trained policy.
///
/// # Errors
///
/// Same as [`run_fleet`].
pub fn run_fleet_reference_with_policy(
    trace: &ClusterTrace,
    config: &FleetConfig,
    policy: PondPolicy,
) -> Result<FleetOutcome, PondError> {
    let mut plane = PondControlPlane::with_policy(config.control.clone(), policy)?;
    let accounting = ReplayAccounting::new(&config.control);

    let hosts = plane.hosts().len();
    let mut peak_local = vec![Bytes::ZERO; hosts];
    let mut peak_host_pool = vec![Bytes::ZERO; hosts];
    let mut peak_total = vec![Bytes::ZERO; hosts];
    let mut outcome = FleetOutcome::default();
    let mut placed: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut pooled_hosts: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut degraded: u64 = 0;
    let departure_of: std::collections::HashMap<u64, u64> =
        trace.requests.iter().map(|r| (r.id, r.departure())).collect();

    let mut events = ReferenceEventQueue::new(trace, config.qos_interval);
    while let Some(event) = events.next_event() {
        let now = Duration::from_secs(event.time());
        match event {
            Event::Arrival { request_index, .. } => {
                let request = &trace.requests[request_index];
                match plane.handle_request(request, now) {
                    Ok(summary) => {
                        accounting.record_placement(&mut outcome, request, &summary);
                        if !summary.pool.is_zero() {
                            pooled_hosts.insert(summary.host);
                        }
                        placed.insert(request_index);
                        events.schedule_departure(
                            request.departure(),
                            request_index as u64,
                            request_index,
                        );
                    }
                    Err(PondError::NoFeasibleHost { .. })
                    | Err(PondError::PoolExhausted { .. }) => {
                        outcome.rejected_vms += 1;
                    }
                    Err(other) => return Err(other),
                }
            }
            Event::Departure { token: request_index, .. } => {
                if placed.remove(&request_index) {
                    let vm = VmId(trace.requests[request_index].id);
                    if let Some(ready) = plane.handle_departure(vm, now)? {
                        events.schedule_release(ceil_secs(ready));
                    }
                }
            }
            Event::Release { .. } => {
                plane.complete_releases(now);
                outcome.releases_completed += 1;
            }
            Event::ReconfigDone { .. } => {
                checked_decrement(&mut degraded, "in-flight mitigation copies");
                outcome.reconfig_completions += 1;
            }
            Event::EmcFailure { .. }
            | Event::EmcRepair { .. }
            | Event::GroupDecommission { .. }
            | Event::GroupExpansion { .. }
            | Event::MigrationDone { .. } => {
                unreachable!("run_fleet_reference schedules no failure-drill or lifecycle events")
            }
            Event::Snapshot { time } => {
                let pass = plane.run_qos_pass(now)?;
                accounting.record_qos_pass(
                    &mut outcome,
                    pass,
                    time,
                    |id| departure_of.get(&id).copied(),
                    &mut degraded,
                    |kind, at| match kind {
                        ScheduledEvent::Release => events.schedule_release(at),
                        ScheduledEvent::ReconfigDone => events.schedule_reconfig_done(at),
                    },
                );
            }
        }

        track_peaks(&plane, &mut outcome, &mut peak_local, &mut peak_host_pool, &mut peak_total);

        #[cfg(debug_assertions)]
        plane.assert_pool_conserved();
    }

    debug_assert_eq!(plane.running_vms(), 0, "every placed VM must have departed");
    debug_assert!(
        plane.pool().pending_release().is_zero(),
        "every release event must have been delivered and processed"
    );
    debug_assert_eq!(degraded, 0, "every mitigation copy must have completed as an event");
    debug_assert_eq!(
        outcome.reconfig_completions, outcome.mitigations,
        "one ReconfigDone event per mitigation"
    );

    outcome.pooled_host_count = pooled_hosts.len() as u64;
    outcome.sum_local_peaks = peak_local.iter().copied().sum();
    outcome.sum_host_pool_peaks = peak_host_pool.iter().copied().sum();
    outcome.sum_total_peaks = peak_total.iter().copied().sum();
    Ok(outcome)
}

/// One point of a pool-percentage sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepPoint {
    /// Pool capacity as a fraction of the fleet's local DRAM.
    pub pool_fraction: f64,
    /// The full replay outcome at that pool size.
    pub outcome: FleetOutcome,
}

/// Sweeps pool percentages over one trace, replaying the full control plane
/// at every point on the parallel [`sweep`] runner. Results come back in
/// `pool_fractions` order and each point is deterministic for a fixed
/// `(trace, seed)`, so the whole sweep is reproducible bit for bit.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn fleet_pool_sweep(
    trace: &ClusterTrace,
    pool_fractions: &[f64],
    seed: u64,
) -> Result<Vec<FleetSweepPoint>, PondError> {
    fleet_pool_sweep_with(trace, pool_fractions, |fraction| {
        FleetConfig::for_trace(trace, fraction, seed)
    })
}

/// [`fleet_pool_sweep`] with a caller-supplied configuration per point
/// (e.g. to vary the latency scenario or QoS cadence alongside the pool
/// percentage). `make_config` may run from several threads at once.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn fleet_pool_sweep_with<F>(
    trace: &ClusterTrace,
    pool_fractions: &[f64],
    make_config: F,
) -> Result<Vec<FleetSweepPoint>, PondError>
where
    F: Fn(f64) -> FleetConfig + Sync,
{
    let results = sweep::parallel_map(pool_fractions, |_, &fraction| {
        run_fleet(trace, &make_config(fraction))
            .map(|outcome| FleetSweepPoint { pool_fraction: fraction, outcome })
    });
    results.into_iter().collect()
}

/// [`fleet_pool_sweep`] over a source factory: every grid point streams a
/// fresh source (training prefix included), so no point ever materializes
/// the trace. Bit-identical to [`fleet_pool_sweep`] when the factory yields
/// the same request stream. `make_source` may run from several threads at
/// once.
///
/// # Errors
///
/// Propagates the first replay or stream error in sweep order.
pub fn fleet_pool_sweep_source<S, F>(
    make_source: F,
    pool_fractions: &[f64],
    seed: u64,
) -> Result<Vec<FleetSweepPoint>, PondError>
where
    S: ArrivalSource,
    F: Fn() -> S + Sync,
{
    let header = make_source().header().clone();
    let results = sweep::parallel_map(pool_fractions, |_, &fraction| {
        let config = FleetConfig::for_header(&header, fraction, seed);
        let policy = PondPolicy::train_source(&make_source, &config.control.policy, config.seed)?;
        run_fleet_source(make_source(), &config, policy)
            .map(|outcome| FleetSweepPoint { pool_fraction: fraction, outcome })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};

    fn small_trace() -> ClusterTrace {
        TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
    }

    #[test]
    fn optimized_replay_matches_the_reference_replay_bit_for_bit() {
        let trace = small_trace();
        // Pool sizes spanning heavy mitigation traffic (tiny) to none.
        for fraction in [0.02, 0.20, 0.40] {
            let config = FleetConfig::for_trace(&trace, fraction, 7);
            let optimized = run_fleet(&trace, &config).unwrap();
            let reference = run_fleet_reference(&trace, &config).unwrap();
            assert_eq!(optimized, reference, "pool fraction {fraction}");
        }
    }

    #[test]
    fn a_lazily_generated_stream_replays_like_its_materialized_trace() {
        // The generator's lazy source and its materialized trace are the
        // same request stream, so training from the stream prefix and
        // replaying through the arena must reproduce the trace replay — the
        // whole point of the bounded-memory path.
        let generator = TraceGenerator::new(ClusterConfig::small(), 1);
        let trace = generator.generate(0);
        let config = FleetConfig::for_header(&cluster_sim::TraceHeader::of_trace(&trace), 0.20, 7);
        assert_eq!(config, FleetConfig::for_trace(&trace, 0.20, 7));

        let materialized = run_fleet(&trace, &config).unwrap();
        let policy =
            PondPolicy::train_source(|| generator.stream(0), &config.control.policy, config.seed)
                .unwrap();
        let streamed = run_fleet_source(generator.stream(0), &config, policy).unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn a_failing_source_surfaces_a_trace_stream_error() {
        // Truncate the stream contract: arrivals out of order make the
        // validated wrapper fail mid-replay, which must surface as an error
        // instead of silently ending the replay.
        let mut trace = small_trace();
        // The initial population all arrives at t=0, so swap in the final
        // arrival up front to guarantee a genuine order violation.
        let last = trace.requests.len() - 1;
        trace.requests.swap(0, last);
        let config = FleetConfig::for_trace(&trace, 0.20, 7);
        let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
        let err = run_fleet_source(
            cluster_sim::Validated::new(cluster_sim::TraceCursor::new(&trace)),
            &config,
            policy,
        )
        .unwrap_err();
        assert!(
            matches!(&err, PondError::TraceStream(detail) if detail.contains("before the previous")),
            "{err:?}"
        );
    }

    #[test]
    fn the_source_sweep_matches_the_materialized_sweep() {
        let generator = TraceGenerator::new(ClusterConfig::small(), 1);
        let trace = generator.generate(0);
        let fractions = [0.05, 0.20];
        let materialized = fleet_pool_sweep(&trace, &fractions, 7).unwrap();
        let streamed = fleet_pool_sweep_source(|| generator.stream(0), &fractions, 7).unwrap();
        assert_eq!(streamed, materialized);
    }

    #[test]
    fn fleet_replay_places_most_vms_and_uses_the_pool() {
        let trace = small_trace();
        let config = FleetConfig::for_trace(&trace, 0.20, 7);
        let outcome = run_fleet(&trace, &config).unwrap();
        assert!(outcome.scheduled_vms > 0);
        assert!(
            outcome.scheduled_vms >= 9 * (outcome.scheduled_vms + outcome.rejected_vms) / 10,
            "a fleet-sized control plane should place nearly everything: {outcome:?}"
        );
        assert!(outcome.pool_dram_fraction() > 0.0, "Pond must put memory on the pool");
        assert!(outcome.pool_peak > Bytes::ZERO);
        assert!(outcome.releases_completed > 0, "offlining completions must be events");
        assert!(outcome.qos_passes > 0);
        // The accounting identity behind the savings number.
        assert_eq!(
            outcome.required_dram(),
            outcome
                .sum_total_peaks
                .saturating_sub(outcome.sum_host_pool_peaks.saturating_sub(outcome.pool_peak))
        );
    }

    #[test]
    fn bigger_pools_never_hurt_savings_on_the_same_trace() {
        let trace = small_trace();
        let points = fleet_pool_sweep(&trace, &[0.05, 0.20, 0.40], 7).unwrap();
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].outcome.dram_savings_fraction()
                    >= pair[0].outcome.dram_savings_fraction() - 1e-9,
                "savings must not shrink with pool capacity: {points:?}"
            );
        }
    }

    #[test]
    fn tiny_pools_force_all_local_fallbacks() {
        let trace = small_trace();
        let config = FleetConfig::for_trace(&trace, 0.001, 7);
        let outcome = run_fleet(&trace, &config).unwrap();
        assert!(outcome.fallback_all_local > 0, "a ~1 GiB pool cannot serve every prediction");
        // Fallbacks keep savings near zero but never fail the placement for
        // pool reasons; any rejections left are hosts out of local DRAM.
        assert!(outcome.dram_savings_fraction() < 0.02);
    }

    #[test]
    fn qos_interval_zero_disables_monitoring() {
        let trace = small_trace();
        let mut config = FleetConfig::for_trace(&trace, 0.20, 7);
        config.qos_interval = 0;
        let outcome = run_fleet(&trace, &config).unwrap();
        assert_eq!(outcome.qos_passes, 0);
        assert_eq!(outcome.mitigations, 0);
        assert_eq!(outcome.mitigation_copy_time, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "pool fraction")]
    fn invalid_pool_fraction_rejected() {
        let _ = FleetConfig::for_trace(&small_trace(), 1.5, 0);
    }

    #[test]
    fn outcome_display_is_a_stable_aligned_block() {
        let outcome = FleetOutcome {
            scheduled_vms: 1000,
            rejected_vms: 10,
            vms_migrated: 30,
            vms_killed: 10,
            sum_total_peaks: Bytes::from_gib(1000),
            sum_host_pool_peaks: Bytes::from_gib(300),
            pool_peak: Bytes::from_gib(100),
            ..FleetOutcome::default()
        };
        let block = outcome.to_string();
        let lines: Vec<&str> = block.lines().collect();
        assert_eq!(lines.len(), 10, "{block}");
        assert!(lines[0].contains("scheduled") && lines[0].contains("1000"), "{block}");
        assert!(lines[1].contains("availability") && lines[1].contains("99.00%"), "{block}");
        assert!(lines[1].contains("survival") && lines[1].contains("75.00%"), "{block}");
        assert!(lines[2].contains("dram savings") && lines[2].contains("20.00%"), "{block}");
        assert!(lines[3].contains("800 GiB") && lines[3].contains("1000 GiB"), "{block}");
        assert!(!block.ends_with('\n'), "no trailing newline: callers println! the block");
        // Every row shares the same aligned shape.
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.iter().all(|&w| w == widths[0]), "{block}");
    }

    #[test]
    fn an_observed_replay_is_bit_identical_and_samples_every_snapshot() {
        let trace = small_trace();
        let config = FleetConfig::for_trace(&trace, 0.20, 7);
        let policy = PondPolicy::train(&trace, &config.control.policy, config.seed);
        let unobserved =
            run_fleet_source(TraceCursor::new(&trace), &config, policy.clone()).unwrap();
        let mut recorder = pond_metrics::TimeSeriesRecorder::new();
        let observed =
            run_fleet_source_observed(TraceCursor::new(&trace), &config, policy, &mut recorder)
                .unwrap();
        assert_eq!(observed, unobserved);
        assert_eq!(recorder.points().len() as u64, unobserved.qos_passes);
        let last = recorder.points().last().unwrap();
        assert_eq!(last.groups.len(), 1);
        assert!(last.fleet_availability > 0.0);
    }
}
