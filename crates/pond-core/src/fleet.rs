//! The event-driven fleet replay: [`PondControlPlane`] driven by
//! `cluster-sim`'s time-ordered event core (§6.5, Figures 19–20).
//!
//! The paper's headline DRAM-savings numbers come from replaying a cloud VM
//! trace through the *full* Pond pipeline, not through a static local/pool
//! split. This module closes that loop: every arrival gets a live
//! [`crate::policy::PondDecision`] from the trained prediction models, Pool
//! Manager slice offlining completes as first-class
//! [`Event::Release`](cluster_sim::event::Event) events, and periodic QoS
//! passes reconfigure mispredicted VMs back to all-local memory with their
//! 50 ms/GiB copy cost charged on the event timeline before the freed slices
//! start offlining.
//!
//! The event stream is the contract documented in [`cluster_sim::event`]: at
//! equal times departures apply first, then release completions, then the
//! QoS tick, then arrivals — so a QoS pass never sees a departed VM, an
//! arrival allocates from a buffer that reflects every release due by its
//! arrival time, and the whole replay is deterministic. Pool-accounting
//! conservation (every slice is free, pinned, or mid-offlining) is
//! debug-asserted after every event.

use crate::control_plane::{ControlPlaneConfig, PondControlPlane};
use crate::error::PondError;
use cluster_sim::event::{Event, EventQueue};
use cluster_sim::sweep;
use cluster_sim::trace::ClusterTrace;
use cxl_hw::units::Bytes;
use hypervisor_sim::vm::VmId;
use serde::{Deserialize, Serialize};
use std::time::Duration;
use workload_model::spill::SpillModel;
use workload_model::WorkloadSuite;

/// Configuration of one fleet replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The control plane under test (hosts, pool, policy, mitigation budget).
    pub control: ControlPlaneConfig,
    /// Seconds between QoS-monitoring passes (the event core's snapshot
    /// cadence; `0` disables monitoring).
    pub qos_interval: u64,
    /// Seed for model training and telemetry sampling.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            control: ControlPlaneConfig { fallback_all_local: true, ..Default::default() },
            qos_interval: 6 * 3600,
            seed: 19,
        }
    }
}

impl FleetConfig {
    /// A fleet sized to a trace: one control-plane host per trace server up
    /// to the 16 CXL ports of the default 16-socket pool's EMC (every host
    /// must hold a port for the pool's whole lifetime), with the trace's
    /// total DRAM spread evenly across the hosts and the pool holding
    /// `pool_fraction` of that DRAM as extra pooled capacity.
    ///
    /// This is the knob Figures 19–20 sweep: `pool_fraction` is the pool
    /// percentage, and the replay reports the DRAM savings and mitigation
    /// rate the full pipeline achieves at that size.
    pub fn for_trace(trace: &ClusterTrace, pool_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pool_fraction) && pool_fraction.is_finite(),
            "pool fraction must be in [0, 1]"
        );
        let hosts = (trace.servers.max(1) as u16).min(16);
        let fleet_dram = Bytes::from_gib(trace.dram_per_server.as_gib() * trace.servers as u64);
        let local_per_host = Bytes::from_gib(fleet_dram.as_gib() / hosts as u64);
        let pool_capacity = Bytes::from_gib(fleet_dram.scaled(pool_fraction).slices_floor().max(1));
        FleetConfig {
            control: ControlPlaneConfig {
                hosts,
                local_dram_per_host: local_per_host,
                pool_capacity,
                fallback_all_local: true,
                ..Default::default()
            },
            ..Default::default()
        }
        .with_seed(seed)
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Aggregated results of one fleet replay.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetOutcome {
    /// VMs placed by the control plane.
    pub scheduled_vms: u64,
    /// VMs that could not be placed (no host had enough local DRAM, or the
    /// pool was exhausted with the all-local fallback disabled).
    pub rejected_vms: u64,
    /// Placements that fell back to all-local memory because the pool buffer
    /// could not cover the predicted pool share.
    pub fallback_all_local: u64,
    /// VMs whose ground-truth slowdown exceeded the PDM.
    pub violations: u64,
    /// VMs the QoS monitor reconfigured to all-local memory.
    pub mitigations: u64,
    /// Total pool→local copy time the mitigations charged.
    pub mitigation_copy_time: Duration,
    /// QoS passes executed.
    pub qos_passes: u64,
    /// Release-completion events processed.
    pub releases_completed: u64,
    /// Sum over hosts of each host's peak pinned local memory.
    pub sum_local_peaks: Bytes,
    /// Sum over hosts of each host's peak pinned pool memory — what that
    /// memory would cost as dedicated per-host DRAM.
    pub sum_host_pool_peaks: Bytes,
    /// Sum over hosts of each host's peak total (local + pool) memory — the
    /// DRAM a pool-less provisioning would need.
    pub sum_total_peaks: Bytes,
    /// Peak pool capacity assigned to hosts, *including* slices still
    /// offlining — the pool DRAM that actually has to be provisioned. The
    /// asynchronous-release tail lives here: slow offlining inflates this
    /// peak and erodes the savings.
    pub pool_peak: Bytes,
    /// GiB-hours of VM memory served from the pool. Mitigated VMs stop
    /// accruing at their reconfiguration: the unserved remainder of their
    /// lifetime is deducted when the QoS pass moves them off the pool.
    pub pool_gib_hours: f64,
    /// GiB-hours of VM memory overall.
    pub total_gib_hours: f64,
}

impl FleetOutcome {
    /// DRAM required without pooling: every host provisioned for its own
    /// combined peak.
    pub fn baseline_dram(&self) -> Bytes {
        self.sum_total_peaks
    }

    /// DRAM required with pooling: the baseline minus the sharing gain (what
    /// the pool-eligible memory would cost per host, less what the shared
    /// pool must actually provision at its peak — offlining tail included).
    pub fn required_dram(&self) -> Bytes {
        let sharing_gain = self.sum_host_pool_peaks.saturating_sub(self.pool_peak);
        self.sum_total_peaks.saturating_sub(sharing_gain)
    }

    /// Relative DRAM requirement (1.0 = no savings, lower is better).
    pub fn required_dram_fraction(&self) -> f64 {
        if self.baseline_dram().is_zero() {
            1.0
        } else {
            self.required_dram().as_u64() as f64 / self.baseline_dram().as_u64() as f64
        }
    }

    /// DRAM savings relative to the pool-less baseline.
    pub fn dram_savings_fraction(&self) -> f64 {
        1.0 - self.required_dram_fraction()
    }

    /// Fraction of VM memory GiB-hours served from the pool.
    pub fn pool_dram_fraction(&self) -> f64 {
        if self.total_gib_hours == 0.0 {
            0.0
        } else {
            self.pool_gib_hours / self.total_gib_hours
        }
    }

    /// Fraction of scheduled VMs whose slowdown exceeded the PDM.
    pub fn violation_fraction(&self) -> f64 {
        if self.scheduled_vms == 0 {
            0.0
        } else {
            self.violations as f64 / self.scheduled_vms as f64
        }
    }

    /// Fraction of scheduled VMs the QoS monitor reconfigured.
    pub fn mitigation_rate(&self) -> f64 {
        if self.scheduled_vms == 0 {
            0.0
        } else {
            self.mitigations as f64 / self.scheduled_vms as f64
        }
    }
}

/// Event times are whole seconds; releases complete at millisecond
/// granularity, so their events land on the next whole second.
fn ceil_secs(duration: Duration) -> u64 {
    duration.as_secs() + u64::from(duration.subsec_nanos() > 0)
}

/// Replays a trace through the full Pond control plane on the time-ordered
/// event core and returns the aggregated outcome.
///
/// # Errors
///
/// Propagates control-plane construction failures (unsupported pool
/// topology) and any error other than the expected placement failures
/// (`NoFeasibleHost`, and `PoolExhausted` when the fallback is disabled).
pub fn run_fleet(trace: &ClusterTrace, config: &FleetConfig) -> Result<FleetOutcome, PondError> {
    let mut plane = PondControlPlane::new(trace, config.control.clone(), config.seed)?;
    let scenario = config.control.policy.scenario;
    let pdm = config.control.policy.pdm;
    let suite = WorkloadSuite::standard();
    let spill = SpillModel::default();

    let hosts = plane.hosts().len();
    let mut peak_local = vec![Bytes::ZERO; hosts];
    let mut peak_host_pool = vec![Bytes::ZERO; hosts];
    let mut peak_total = vec![Bytes::ZERO; hosts];
    let mut outcome = FleetOutcome::default();
    let mut placed: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let departure_of: std::collections::HashMap<u64, u64> =
        trace.requests.iter().map(|r| (r.id, r.departure())).collect();

    let mut events = EventQueue::new(trace, config.qos_interval);
    while let Some(event) = events.next_event() {
        let now = Duration::from_secs(event.time());
        match event {
            Event::Arrival { request_index, .. } => {
                let request = &trace.requests[request_index];
                match plane.handle_request(request, now) {
                    Ok(summary) => {
                        outcome.scheduled_vms += 1;
                        outcome.fallback_all_local += u64::from(summary.fallback_all_local);
                        placed.insert(request_index);
                        events.schedule_departure(request.departure(), request_index);

                        // Ground-truth QoS outcome, via the same spill model
                        // the cluster simulator uses.
                        let workload = suite
                            .at(request.workload_index % suite.len())
                            .expect("workload index is taken modulo the suite size");
                        let fraction =
                            SpillModel::spill_fraction(request.touched_memory(), summary.local);
                        let slowdown = spill.spill_slowdown(workload, scenario, fraction);
                        outcome.violations += u64::from(slowdown > pdm);

                        let hours = request.lifetime as f64 / 3600.0;
                        outcome.pool_gib_hours += summary.pool.as_gib_f64() * hours;
                        outcome.total_gib_hours += request.memory.as_gib_f64() * hours;
                    }
                    Err(PondError::NoFeasibleHost { .. })
                    | Err(PondError::PoolExhausted { .. }) => {
                        outcome.rejected_vms += 1;
                    }
                    Err(other) => return Err(other),
                }
            }
            Event::Departure { request_index, .. } => {
                // Only placed VMs scheduled a departure, so the lookup can
                // only miss on malformed traces that reuse a request index.
                if placed.remove(&request_index) {
                    let vm = VmId(trace.requests[request_index].id);
                    if let Some(ready) = plane.handle_departure(vm, now)? {
                        events.schedule_release(ceil_secs(ready));
                    }
                }
            }
            Event::Release { .. } => {
                plane.complete_releases(now);
                outcome.releases_completed += 1;
            }
            Event::Snapshot { time } => {
                let pass = plane.run_qos_pass(now);
                outcome.mitigations += pass.reconfigured;
                outcome.mitigation_copy_time += pass.copy_time;
                outcome.qos_passes += 1;
                for mitigation in pass.mitigated {
                    if let Some(ready) = mitigation.release_ready {
                        events.schedule_release(ceil_secs(ready));
                    }
                    // The VM was charged for its whole lifetime at arrival;
                    // take back the pool GiB-hours it will no longer serve.
                    let remaining = departure_of
                        .get(&mitigation.vm.0)
                        .map_or(0, |&departure| departure.saturating_sub(time));
                    outcome.pool_gib_hours -=
                        mitigation.moved.as_gib_f64() * remaining as f64 / 3600.0;
                }
            }
        }

        // Track the provisioning peaks after every event; QoS passes move
        // pool memory local, so arrivals are not the only peak-setters.
        for (i, host) in plane.hosts().iter().enumerate() {
            let local = host.local_allocated();
            let host_pool = host.pool_allocated();
            peak_local[i] = peak_local[i].max(local);
            peak_host_pool[i] = peak_host_pool[i].max(host_pool);
            peak_total[i] = peak_total[i].max(local + host_pool);
        }
        outcome.pool_peak = outcome.pool_peak.max(plane.pool().pool().assigned_capacity());

        // Conservation of pool accounting, checked at every event in debug
        // builds: free + offlining + pinned must equal the pool's capacity.
        #[cfg(debug_assertions)]
        plane.assert_pool_conserved();
    }

    debug_assert_eq!(plane.running_vms(), 0, "every placed VM must have departed");
    debug_assert!(
        plane.pool().pending_release().is_zero(),
        "every release event must have been delivered and processed"
    );

    outcome.sum_local_peaks = peak_local.iter().copied().sum();
    outcome.sum_host_pool_peaks = peak_host_pool.iter().copied().sum();
    outcome.sum_total_peaks = peak_total.iter().copied().sum();
    Ok(outcome)
}

/// One point of a pool-percentage sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSweepPoint {
    /// Pool capacity as a fraction of the fleet's local DRAM.
    pub pool_fraction: f64,
    /// The full replay outcome at that pool size.
    pub outcome: FleetOutcome,
}

/// Sweeps pool percentages over one trace, replaying the full control plane
/// at every point on the parallel [`sweep`] runner. Results come back in
/// `pool_fractions` order and each point is deterministic for a fixed
/// `(trace, seed)`, so the whole sweep is reproducible bit for bit.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn fleet_pool_sweep(
    trace: &ClusterTrace,
    pool_fractions: &[f64],
    seed: u64,
) -> Result<Vec<FleetSweepPoint>, PondError> {
    fleet_pool_sweep_with(trace, pool_fractions, |fraction| {
        FleetConfig::for_trace(trace, fraction, seed)
    })
}

/// [`fleet_pool_sweep`] with a caller-supplied configuration per point
/// (e.g. to vary the latency scenario or QoS cadence alongside the pool
/// percentage). `make_config` may run from several threads at once.
///
/// # Errors
///
/// Propagates the first replay error in sweep order.
pub fn fleet_pool_sweep_with<F>(
    trace: &ClusterTrace,
    pool_fractions: &[f64],
    make_config: F,
) -> Result<Vec<FleetSweepPoint>, PondError>
where
    F: Fn(f64) -> FleetConfig + Sync,
{
    let results = sweep::parallel_map(pool_fractions, |_, &fraction| {
        run_fleet(trace, &make_config(fraction))
            .map(|outcome| FleetSweepPoint { pool_fraction: fraction, outcome })
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::tracegen::{ClusterConfig, TraceGenerator};

    fn small_trace() -> ClusterTrace {
        TraceGenerator::new(ClusterConfig::small(), 1).generate(0)
    }

    #[test]
    fn fleet_replay_places_most_vms_and_uses_the_pool() {
        let trace = small_trace();
        let config = FleetConfig::for_trace(&trace, 0.20, 7);
        let outcome = run_fleet(&trace, &config).unwrap();
        assert!(outcome.scheduled_vms > 0);
        assert!(
            outcome.scheduled_vms >= 9 * (outcome.scheduled_vms + outcome.rejected_vms) / 10,
            "a fleet-sized control plane should place nearly everything: {outcome:?}"
        );
        assert!(outcome.pool_dram_fraction() > 0.0, "Pond must put memory on the pool");
        assert!(outcome.pool_peak > Bytes::ZERO);
        assert!(outcome.releases_completed > 0, "offlining completions must be events");
        assert!(outcome.qos_passes > 0);
        // The accounting identity behind the savings number.
        assert_eq!(
            outcome.required_dram(),
            outcome
                .sum_total_peaks
                .saturating_sub(outcome.sum_host_pool_peaks.saturating_sub(outcome.pool_peak))
        );
    }

    #[test]
    fn bigger_pools_never_hurt_savings_on_the_same_trace() {
        let trace = small_trace();
        let points = fleet_pool_sweep(&trace, &[0.05, 0.20, 0.40], 7).unwrap();
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].outcome.dram_savings_fraction()
                    >= pair[0].outcome.dram_savings_fraction() - 1e-9,
                "savings must not shrink with pool capacity: {points:?}"
            );
        }
    }

    #[test]
    fn tiny_pools_force_all_local_fallbacks() {
        let trace = small_trace();
        let config = FleetConfig::for_trace(&trace, 0.001, 7);
        let outcome = run_fleet(&trace, &config).unwrap();
        assert!(outcome.fallback_all_local > 0, "a ~1 GiB pool cannot serve every prediction");
        // Fallbacks keep savings near zero but never fail the placement for
        // pool reasons; any rejections left are hosts out of local DRAM.
        assert!(outcome.dram_savings_fraction() < 0.02);
    }

    #[test]
    fn qos_interval_zero_disables_monitoring() {
        let trace = small_trace();
        let mut config = FleetConfig::for_trace(&trace, 0.20, 7);
        config.qos_interval = 0;
        let outcome = run_fleet(&trace, &config).unwrap();
        assert_eq!(outcome.qos_passes, 0);
        assert_eq!(outcome.mitigations, 0);
        assert_eq!(outcome.mitigation_copy_time, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "pool fraction")]
    fn invalid_pool_fraction_rejected() {
        let _ = FleetConfig::for_trace(&small_trace(), 1.5, 0);
    }
}
