//! The live-VM arena: bounded bookkeeping for streamed fleet replays.
//!
//! The pre-streaming replays indexed every per-VM fact by *trace request
//! index* — `placed: Vec<bool>`, `group_of_vm: Vec<u32>`, and a whole-trace
//! id→index table — so bookkeeping memory grew with trace length even though
//! only the live VMs matter at any instant. [`LiveVmArena`] replaces all of
//! that with a growable slot arena keyed by a compact token: a placement
//! allocates a slot holding the full [`VmRequest`] (the trace itself may no
//! longer be materialized), a departure frees it, and freed slots are
//! recycled through a free list. Peak arena size is the peak number of
//! concurrently live VMs, not the trace length.
//!
//! The recycling contract that keeps token reuse safe: a slot stays
//! allocated until the VM's *scheduled departure event* pops, even when the
//! VM stopped running earlier (killed by an EMC failure). The departure
//! event is the single place a token is returned to the free list, so every
//! token in flight on the event timeline refers to exactly one allocation
//! and a recycled token can never alias a VM whose departure is still
//! queued.
//!
//! Id lookups (QoS mitigations and EMC blast radii report [`VmId`]s, not
//! tokens) go through a live-only hash map, so they too are O(live VMs).
//!
//! [`VmId`]: hypervisor_sim::vm::VmId

use cluster_sim::trace::VmRequest;
use std::collections::HashMap;

/// Group marker for a VM that is not currently running in any pool group:
/// either the replay is single-group (and never sets a group), or the VM was
/// killed by a failure drill and awaits its no-op departure event.
pub const NO_GROUP: u32 = u32::MAX;

/// One live VM's bookkeeping.
#[derive(Debug, Clone)]
struct Slot {
    request: VmRequest,
    /// Arrival ordinal — the tie-break feeding the event core's
    /// deterministic simultaneous-departure order.
    seq: u64,
    /// The pool group the VM currently runs in ([`NO_GROUP`] when none).
    group: u32,
}

/// A growable arena of live VMs with free-list slot recycling.
///
/// Tokens returned by [`LiveVmArena::alloc`] stay valid until the matching
/// [`LiveVmArena::free`]; see the module docs for the recycling contract.
#[derive(Debug, Default)]
pub struct LiveVmArena {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    by_id: HashMap<u64, u32>,
    live: usize,
    peak_live: usize,
}

impl LiveVmArena {
    /// An empty arena.
    pub fn new() -> Self {
        LiveVmArena::default()
    }

    /// Allocates a slot for a placed VM and returns its token, recycling a
    /// freed slot when one is available. `seq` is the VM's arrival ordinal.
    /// On a duplicate id the later allocation wins the id lookup (matching
    /// the hash-map bookkeeping this replaces), though validated streams
    /// never produce one.
    pub fn alloc(&mut self, request: VmRequest, seq: u64) -> usize {
        let id = request.id;
        let slot = Slot { request, seq, group: NO_GROUP };
        let token = match self.free.pop() {
            Some(token) => {
                debug_assert!(self.slots[token as usize].is_none(), "free list holds live slot");
                self.slots[token as usize] = Some(slot);
                token
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "more than u32::MAX live VMs");
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.by_id.insert(id, token);
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        token as usize
    }

    /// Frees `token` (the VM's departure event popped) and returns the slot's
    /// final group marker. The token may be recycled by the next
    /// [`LiveVmArena::alloc`].
    ///
    /// # Panics
    ///
    /// Panics when `token` is not allocated — a double free means a
    /// departure event was delivered twice.
    pub fn free(&mut self, token: usize) -> u32 {
        let slot = self.slots[token].take().expect("departure event freed an unallocated slot");
        // Only unmap the id if it still points here: on duplicate ids the
        // later allocation owns the lookup.
        if self.by_id.get(&slot.request.id) == Some(&(token as u32)) {
            self.by_id.remove(&slot.request.id);
        }
        self.free.push(token as u32);
        self.live -= 1;
        slot.group
    }

    /// The request held in an allocated slot.
    ///
    /// # Panics
    ///
    /// Panics when `token` is not allocated.
    pub fn request(&self, token: usize) -> &VmRequest {
        &self.slots[token].as_ref().expect("token refers to a live slot").request
    }

    /// The arrival ordinal of an allocated slot.
    ///
    /// # Panics
    ///
    /// Panics when `token` is not allocated.
    pub fn seq(&self, token: usize) -> u64 {
        self.slots[token].as_ref().expect("token refers to a live slot").seq
    }

    /// The group marker of an allocated slot ([`NO_GROUP`] when the VM runs
    /// in no group).
    ///
    /// # Panics
    ///
    /// Panics when `token` is not allocated.
    pub fn group(&self, token: usize) -> u32 {
        self.slots[token].as_ref().expect("token refers to a live slot").group
    }

    /// Sets the group marker of an allocated slot ([`NO_GROUP`] to mark a
    /// killed VM whose departure event is still queued).
    ///
    /// # Panics
    ///
    /// Panics when `token` is not allocated.
    pub fn set_group(&mut self, token: usize, group: u32) {
        self.slots[token].as_mut().expect("token refers to a live slot").group = group;
    }

    /// The slot token of the live VM with `id`, if one is allocated.
    pub fn slot_of(&self, id: u64) -> Option<usize> {
        self.by_id.get(&id).map(|&token| token as usize)
    }

    /// The departure time of the live VM with `id`, if one is allocated —
    /// the QoS pass's GiB-hour take-back hook.
    pub fn departure_of(&self, id: u64) -> Option<u64> {
        self.slot_of(id).map(|token| self.request(token).departure())
    }

    /// Currently allocated slots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak concurrently allocated slots over the arena's lifetime — the
    /// quantity that bounds a streamed replay's bookkeeping memory.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total slots ever grown (`peak_live` plus transient recycling slack).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::trace::{CustomerId, GuestOs, VmType};
    use cxl_hw::units::Bytes;

    fn request(id: u64, arrival: u64) -> VmRequest {
        VmRequest {
            id,
            arrival,
            lifetime: 100,
            cores: 2,
            memory: Bytes::from_gib(8),
            customer: CustomerId(1),
            vm_type: VmType::GeneralPurpose,
            guest_os: GuestOs::Linux,
            region: 0,
            workload_index: 0,
            untouched_fraction: 0.5,
        }
    }

    #[test]
    fn alloc_free_recycles_slots_and_tracks_peaks() {
        let mut arena = LiveVmArena::new();
        let a = arena.alloc(request(10, 0), 0);
        let b = arena.alloc(request(11, 5), 1);
        assert_eq!((arena.live(), arena.peak_live()), (2, 2));
        assert_eq!(arena.request(a).id, 10);
        assert_eq!(arena.seq(b), 1);
        assert_eq!(arena.slot_of(11), Some(b));
        assert_eq!(arena.departure_of(10), Some(100));

        assert_eq!(arena.free(a), NO_GROUP);
        assert_eq!(arena.slot_of(10), None);
        // The freed slot is recycled; the peak stays.
        let c = arena.alloc(request(12, 9), 2);
        assert_eq!(c, a);
        assert_eq!((arena.live(), arena.peak_live(), arena.capacity()), (2, 2, 2));
        assert_eq!(arena.request(c).id, 12);
    }

    #[test]
    fn groups_survive_until_the_departure_frees_the_slot() {
        let mut arena = LiveVmArena::new();
        let t = arena.alloc(request(7, 0), 0);
        assert_eq!(arena.group(t), NO_GROUP);
        arena.set_group(t, 3);
        assert_eq!(arena.group(t), 3);
        // A killed VM is marked groupless but keeps its slot (and id
        // lookup) until the scheduled departure pops.
        arena.set_group(t, NO_GROUP);
        assert_eq!(arena.slot_of(7), Some(t));
        assert_eq!(arena.free(t), NO_GROUP);
        assert_eq!(arena.live(), 0);
    }

    #[test]
    fn duplicate_ids_let_the_later_allocation_win_the_lookup() {
        let mut arena = LiveVmArena::new();
        let first = arena.alloc(request(5, 0), 0);
        let second = arena.alloc(request(5, 1), 1);
        assert_eq!(arena.slot_of(5), Some(second));
        // Freeing the shadowed slot must not unmap the winner.
        arena.free(first);
        assert_eq!(arena.slot_of(5), Some(second));
        arena.free(second);
        assert_eq!(arena.slot_of(5), None);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut arena = LiveVmArena::new();
        let t = arena.alloc(request(1, 0), 0);
        arena.free(t);
        arena.free(t);
    }
}
