//! The Pool Manager (§4.2–4.3): slice assignment with a free buffer and
//! asynchronous release.
//!
//! Onlining pool memory on a host is effectively instantaneous, but
//! offlining takes 10–100 ms per GiB slice (the paper's "per GB"), so it
//! must never sit on the VM-start critical path. Pond therefore keeps a
//! buffer of unassigned pool capacity and replenishes it asynchronously as
//! departed VMs' slices finish offlining (Figure 9, Finding 10).
//! [`PondPoolManager::release_async`] reports when each release will
//! complete so event-driven callers (the fleet replay in [`crate::fleet`])
//! can schedule the completion as a first-class event.

use crate::error::PondError;
use cxl_hw::pool::{EmcFailureReport, PoolSlice, PoolState};
use cxl_hw::topology::PoolTopology;
use cxl_hw::units::{Bytes, EmcId, HostId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Duration;

/// A release that has been initiated but whose offlining has not finished.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct PendingRelease {
    host: HostId,
    slices: Vec<PoolSlice>,
    initiated_at: Duration,
    ready_at: Duration,
}

/// A completed release, recorded for offlining-rate analysis (Finding 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseRecord {
    /// When the release was initiated.
    pub initiated_at: Duration,
    /// When the slices became reusable.
    pub completed_at: Duration,
    /// Amount released.
    pub amount: Bytes,
}

impl ReleaseRecord {
    /// Effective offlining rate in GiB per second (1 GiB slices over wall
    /// time; the paper's Finding 10 quotes the same quantity in "GB/s").
    pub fn rate_gib_per_sec(&self) -> f64 {
        let elapsed = self.completed_at.saturating_sub(self.initiated_at).as_secs_f64();
        if elapsed <= 0.0 {
            f64::INFINITY
        } else {
            self.amount.as_gib_f64() / elapsed
        }
    }
}

/// The Pool Manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PondPoolManager {
    pool: PoolState,
    pending: VecDeque<PendingRelease>,
    releases: Vec<ReleaseRecord>,
    // Incremental mirror of the slice count summed over `pending`, so
    // `pending_release()` — called by every conservation check and pool
    // exhaustion message — is O(1).
    pending_slices: u64,
    // Earliest `ready_at` over `pending` (`Duration::MAX` when none), so
    // `process_releases` — called on every VM arrival to freshen the buffer —
    // is O(1) when nothing has finished offlining yet, instead of draining
    // and rebuilding the whole pending queue each time.
    next_ready: Duration,
}

impl PondPoolManager {
    /// Creates a Pool Manager for a pool topology.
    pub fn new(topology: &PoolTopology) -> Self {
        PondPoolManager {
            pool: PoolState::from_topology(topology),
            pending: VecDeque::new(),
            releases: Vec::new(),
            pending_slices: 0,
            next_ready: Duration::MAX,
        }
    }

    /// Read access to the underlying pool state.
    pub fn pool(&self) -> &PoolState {
        &self.pool
    }

    /// Free capacity available for immediate assignment (the buffer).
    pub fn available(&self) -> Bytes {
        self.pool.free_capacity()
    }

    /// Free buffer capacity a specific host can actually reach: only EMCs
    /// the host is attached to, or that still have a free CXL port, count.
    /// A pool whose ports are all held by other hosts is exhausted from this
    /// host's view even when slices are free.
    pub fn available_for(&self, host: HostId) -> Bytes {
        self.pool.free_capacity_for(host)
    }

    /// Capacity still tied up in releases that have not completed. Served
    /// from the incremental counter in O(1);
    /// [`PondPoolManager::assert_pending_conserved`] cross-checks the
    /// counter against the pending entries.
    pub fn pending_release(&self) -> Bytes {
        Bytes::from_gib(self.pending_slices)
    }

    /// Cross-checks the incremental pending-slice counter against the
    /// pending entries themselves — the full-scan half of the conservation
    /// check, run at snapshot ticks and end of replay.
    ///
    /// # Panics
    ///
    /// Panics when the counter drifted from the entries it mirrors.
    pub fn assert_pending_conserved(&self) {
        let recomputed: u64 = self.pending.iter().map(|p| p.slices.len() as u64).sum();
        assert_eq!(
            recomputed, self.pending_slices,
            "pending-slice counter drifted from the pending release entries"
        );
        assert_eq!(
            self.earliest_pending(),
            self.next_ready,
            "next-ready cache drifted from the pending release entries"
        );
    }

    fn earliest_pending(&self) -> Duration {
        self.pending.iter().map(|p| p.ready_at).min().unwrap_or(Duration::MAX)
    }

    /// Completed release records.
    pub fn release_records(&self) -> &[ReleaseRecord] {
        &self.releases
    }

    /// Allocates pool capacity for a VM start at time `now`.
    ///
    /// Onlining is fast, so the call succeeds immediately as long as the
    /// buffer holds enough *already-free* capacity on EMCs this host can
    /// reach; capacity still offlining does not count (that is exactly why
    /// the buffer exists), and neither does capacity behind ports held
    /// exclusively by other hosts.
    ///
    /// # Errors
    ///
    /// Returns [`PondError::PoolExhausted`] if the host-reachable free
    /// buffer cannot cover the request.
    pub fn allocate(
        &mut self,
        host: HostId,
        amount: Bytes,
        now: Duration,
    ) -> Result<Vec<PoolSlice>, PondError> {
        let _ = now;
        if amount.is_zero() {
            return Ok(Vec::new());
        }
        let reachable = self.available_for(host);
        if reachable < Bytes::from_gib(amount.slices_ceil()) {
            return Err(PondError::PoolExhausted {
                requested: amount,
                host,
                reachable,
                available: self.available(),
                offlining: self.pending_release(),
            });
        }
        Ok(self.pool.add_capacity(host, amount)?)
    }

    /// Initiates the asynchronous release of a departed VM's slices. The
    /// capacity becomes reusable only after the per-GiB offlining delay.
    ///
    /// Returns the time at which the offlining completes (and therefore when
    /// [`PondPoolManager::process_releases`] will return the capacity to the
    /// buffer), or `None` when there was nothing to release. Event-driven
    /// callers schedule a release event at that time.
    ///
    /// # Errors
    ///
    /// Propagates ownership errors from the hardware layer.
    pub fn release_async(
        &mut self,
        host: HostId,
        slices: Vec<PoolSlice>,
        now: Duration,
    ) -> Result<Option<Duration>, PondError> {
        if slices.is_empty() {
            return Ok(None);
        }
        let offline_time = self.pool.begin_release(host, &slices)?;
        let ready_at = now + offline_time;
        self.pending_slices += slices.len() as u64;
        self.next_ready = self.next_ready.min(ready_at);
        self.pending.push_back(PendingRelease { host, slices, initiated_at: now, ready_at });
        Ok(Some(ready_at))
    }

    /// Completes every pending release whose offlining delay has elapsed by
    /// `now`. Returns the capacity returned to the buffer.
    pub fn process_releases(&mut self, now: Duration) -> Bytes {
        if now < self.next_ready {
            // Nothing has finished offlining: the drain below would complete
            // no entry, so skip the queue rebuild entirely.
            return Bytes::ZERO;
        }
        let mut freed = Bytes::ZERO;
        let mut remaining = VecDeque::new();
        while let Some(pending) = self.pending.pop_front() {
            if pending.ready_at <= now {
                let amount = Bytes::from_gib(pending.slices.len() as u64);
                self.pending_slices -= pending.slices.len() as u64;
                self.pool.complete_release(pending.host, &pending.slices).expect(
                    "pending releases reference slices this manager put into releasing state",
                );
                self.releases.push(ReleaseRecord {
                    initiated_at: pending.initiated_at,
                    completed_at: pending.ready_at,
                    amount,
                });
                freed += amount;
            } else {
                remaining.push_back(pending);
            }
        }
        self.pending = remaining;
        self.next_ready = self.earliest_pending();
        freed
    }

    /// Fails one EMC behind the pool and reconciles the manager's in-flight
    /// state with the hardware teardown: every pending release loses the
    /// slices that lived on the dead device (they can neither complete nor
    /// return to the buffer — the capacity itself is gone), and entries left
    /// empty disappear. Without this pruning, the next
    /// [`PondPoolManager::process_releases`] would try to complete a release
    /// for slices the device already forgot — the double-free half of the
    /// port-lifecycle race.
    ///
    /// # Errors
    ///
    /// Propagates [`cxl_hw::CxlError::UnknownEmc`] for unknown devices.
    pub fn fail_emc(&mut self, emc: EmcId) -> Result<EmcFailureReport, PondError> {
        let report = self.pool.fail_emc(emc)?;
        for pending in &mut self.pending {
            let before = pending.slices.len();
            pending.slices.retain(|s| s.emc != emc);
            self.pending_slices -= (before - pending.slices.len()) as u64;
        }
        self.pending.retain(|p| !p.slices.is_empty());
        self.next_ready = self.earliest_pending();
        Ok(report)
    }

    /// Repairs (replaces) a failed EMC, returning the capacity that
    /// rejoined the free buffer ([`Bytes::ZERO`] when the device was
    /// healthy). The repaired device comes back empty — [`Emc::fail`]
    /// already tore its assignments down and
    /// [`PondPoolManager::fail_emc`] already pruned its mid-offlining
    /// slices from the pending queue, so nothing is resurrected: free and
    /// live capacity grow by exactly the same amount and the conservation
    /// invariant (free + pending + assigned == live) holds across the
    /// repair.
    ///
    /// # Errors
    ///
    /// Propagates [`cxl_hw::CxlError::UnknownEmc`] for unknown devices.
    ///
    /// [`Emc::fail`]: cxl_hw::emc::Emc::fail
    pub fn restore_emc(&mut self, emc: EmcId) -> Result<Bytes, PondError> {
        Ok(self.pool.restore_emc(emc)?)
    }

    /// Attaches a new EMC to the pool live (capacity expansion), returning
    /// its device id. The new capacity is immediately part of the free
    /// buffer for every reachable host.
    pub fn attach_emc(&mut self, config: cxl_hw::emc::EmcConfig) -> EmcId {
        self.pool.attach_emc(config)
    }

    /// Handles a host failure: reclaims every slice the host owns —
    /// assigned *and* mid-offlining — back to the free buffer immediately
    /// (the paper's §4.2 host-failure flow), detaches its ports, and drops
    /// the host's pending releases so a later
    /// [`PondPoolManager::process_releases`] cannot double-free a slice that
    /// may already belong to another host. Returns the number of slices
    /// reclaimed.
    pub fn fail_host(&mut self, host: HostId) -> u64 {
        let mut dropped = 0u64;
        self.pending.retain(|p| {
            if p.host == host {
                dropped += p.slices.len() as u64;
                false
            } else {
                true
            }
        });
        self.pending_slices -= dropped;
        self.next_ready = self.earliest_pending();
        self.pool.release_host(host)
    }

    /// Percentile of the observed offlining rates (GiB/s) across completed
    /// releases; Finding 10 reports the 99.99th and 99.999th percentiles of
    /// the rates needed at VM start.
    pub fn release_rate_percentile(&self, percentile: f64) -> Option<f64> {
        if self.releases.is_empty() {
            return None;
        }
        let mut rates: Vec<f64> = self.releases.iter().map(|r| r.rate_gib_per_sec()).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pos = (percentile.clamp(0.0, 1.0) * (rates.len() - 1) as f64).round() as usize;
        Some(rates[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> PondPoolManager {
        let topology = PoolTopology::pond_with_capacity(16, Bytes::from_gib(64)).unwrap();
        PondPoolManager::new(&topology)
    }

    #[test]
    fn allocation_consumes_the_buffer() {
        let mut m = manager();
        assert_eq!(m.available(), Bytes::from_gib(64));
        let slices = m.allocate(HostId(0), Bytes::from_gib(8), Duration::ZERO).unwrap();
        assert_eq!(slices.len(), 8);
        assert_eq!(m.available(), Bytes::from_gib(56));
        assert!(m.allocate(HostId(1), Bytes::ZERO, Duration::ZERO).unwrap().is_empty());
    }

    #[test]
    fn released_capacity_is_unavailable_until_offlining_completes() {
        let mut m = manager();
        let slices = m.allocate(HostId(0), Bytes::from_gib(60), Duration::ZERO).unwrap();
        let ready = m.release_async(HostId(0), slices, Duration::from_secs(10)).unwrap();
        // 60 GiB at 100 ms/GiB = 6 s of offlining.
        assert_eq!(ready, Some(Duration::from_secs(16)));
        // Immediately after the release the capacity is still offlining.
        assert_eq!(m.available(), Bytes::from_gib(4));
        assert_eq!(m.pending_release(), Bytes::from_gib(60));
        let err = m.allocate(HostId(1), Bytes::from_gib(10), Duration::from_secs(10)).unwrap_err();
        assert!(matches!(err, PondError::PoolExhausted { .. }));
        // Not ready one second later.
        assert_eq!(m.process_releases(Duration::from_secs(11)), Bytes::ZERO);
        // Ready after the offlining delay.
        let freed = m.process_releases(Duration::from_secs(17));
        assert_eq!(freed, Bytes::from_gib(60));
        assert_eq!(m.available(), Bytes::from_gib(64));
        assert!(m.allocate(HostId(1), Bytes::from_gib(10), Duration::from_secs(17)).is_ok());
    }

    #[test]
    fn release_records_track_rates() {
        let mut m = manager();
        for i in 0..4u64 {
            let slices = m.allocate(HostId(0), Bytes::from_gib(4), Duration::from_secs(i)).unwrap();
            m.release_async(HostId(0), slices, Duration::from_secs(i)).unwrap();
        }
        m.process_releases(Duration::from_secs(100));
        assert_eq!(m.release_records().len(), 4);
        for record in m.release_records() {
            assert_eq!(record.completed_at.saturating_sub(record.initiated_at).as_millis(), 400);
        }
        let p50 = m.release_rate_percentile(0.5).unwrap();
        // 4 GiB in 0.4 s = 10 GiB/s with the default worst-case timing.
        assert!(p50 > 1.0, "offlining rate {p50} GiB/s");
        assert!(m.release_rate_percentile(1.0).unwrap() >= p50);
        assert!(manager().release_rate_percentile(0.5).is_none());
    }

    #[test]
    fn a_long_sequence_cycles_more_hosts_than_ports_through_the_pool() {
        // Regression for the host-port lifecycle: the default 16-socket pool
        // has 16 CXL ports, but 24 hosts can share it over time because a
        // drained host's port detaches when its last slice finishes
        // offlining. Before detach existed, host 16 failed to attach.
        let mut m = manager();
        for h in 0..24u16 {
            let t = Duration::from_secs(u64::from(h) * 100);
            let slices = m.allocate(HostId(h), Bytes::from_gib(4), t).unwrap();
            let ready = m.release_async(HostId(h), slices, t).unwrap().unwrap();
            assert_eq!(m.process_releases(ready), Bytes::from_gib(4));
        }
        assert_eq!(m.available(), Bytes::from_gib(64));
    }

    #[test]
    fn concurrent_port_exhaustion_is_pool_exhaustion() {
        // All 16 ports held with live slices: a 17th host sees an exhausted
        // pool even though free slices remain.
        let mut m = manager();
        for h in 0..16u16 {
            m.allocate(HostId(h), Bytes::from_gib(1), Duration::ZERO).unwrap();
        }
        assert!(m.available() > Bytes::ZERO);
        assert_eq!(m.available_for(HostId(16)), Bytes::ZERO);
        let err = m.allocate(HostId(16), Bytes::from_gib(1), Duration::ZERO).unwrap_err();
        assert!(matches!(err, PondError::PoolExhausted { .. }));
    }

    #[test]
    fn host_failure_mid_offlining_cannot_double_free_or_leak_a_port() {
        // Regression for the port-lifecycle race: host 0 departs a VM and
        // its slices start offlining; the host then dies before the release
        // completes. The reclaim must not leave a pending entry behind —
        // otherwise the release event still in the queue would later
        // complete_release slices that were already freed (and possibly
        // reassigned to another host: a double-free).
        let mut m = manager();
        let slices = m.allocate(HostId(0), Bytes::from_gib(60), Duration::ZERO).unwrap();
        let ready = m.release_async(HostId(0), slices, Duration::from_secs(10)).unwrap().unwrap();
        assert_eq!(m.pending_release(), Bytes::from_gib(60));

        assert_eq!(m.fail_host(HostId(0)), 60);
        // The capacity is back instantly and nothing is stuck in flight.
        assert_eq!(m.pending_release(), Bytes::ZERO);
        assert_eq!(m.available(), Bytes::from_gib(64));
        // Another host can take the freed slices (the port was not leaked)…
        let stolen = m.allocate(HostId(1), Bytes::from_gib(60), Duration::from_secs(11)).unwrap();
        assert_eq!(stolen.len(), 60);
        // …and the stale release deadline passing must not take them back.
        assert_eq!(m.process_releases(ready + Duration::from_secs(1)), Bytes::ZERO);
        assert_eq!(m.pool().capacity_of(HostId(1)), Bytes::from_gib(60));
        // A dead host with nothing in flight reclaims nothing.
        assert_eq!(m.fail_host(HostId(0)), 0);
    }

    #[test]
    fn emc_failure_mid_offlining_prunes_the_pending_release() {
        // Same race from the device side: the EMC dies while slices are
        // offlining. The pending entry must lose exactly the dead slices so
        // the scheduled release completion finds nothing to double-free.
        let mut m = manager();
        let slices = m.allocate(HostId(2), Bytes::from_gib(4), Duration::ZERO).unwrap();
        let emc = slices[0].emc;
        let ready = m.release_async(HostId(2), slices, Duration::ZERO).unwrap().unwrap();

        let report = m.fail_emc(emc).unwrap();
        assert_eq!(report.lost.len(), 4);
        assert_eq!(m.pending_release(), Bytes::ZERO);
        assert_eq!(m.available(), Bytes::ZERO, "the only EMC is dead");
        // The stale deadline passes without a panic or double-free.
        assert_eq!(m.process_releases(ready), Bytes::ZERO);
        assert!(m.allocate(HostId(3), Bytes::from_gib(1), ready).is_err());
    }

    #[test]
    fn repairing_an_emc_that_failed_mid_offlining_restores_exactly_live_capacity() {
        // Lifecycle race regression: the EMC dies while slices are
        // offlining (the failure pruned them from the pending queue), then
        // the device is repaired. The repair must restore exactly the
        // device's capacity — all of it free, none of it resurrected into
        // the pending queue — with the conservation invariant green
        // throughout.
        let mut m = manager();
        let slices = m.allocate(HostId(2), Bytes::from_gib(4), Duration::ZERO).unwrap();
        let emc = slices[0].emc;
        let ready = m.release_async(HostId(2), slices, Duration::ZERO).unwrap().unwrap();
        m.fail_emc(emc).unwrap();
        m.assert_pending_conserved();
        assert_eq!(m.available(), Bytes::ZERO, "the only EMC is dead");

        let restored = m.restore_emc(emc).unwrap();
        assert_eq!(restored, Bytes::from_gib(64), "the full device rejoins");
        assert_eq!(m.pool().live_capacity(), Bytes::from_gib(64));
        assert_eq!(m.available(), Bytes::from_gib(64), "everything comes back free");
        assert_eq!(m.pending_release(), Bytes::ZERO, "pruned slices stay pruned");
        m.assert_pending_conserved();
        // The pre-failure release deadline passing is a no-op — nothing to
        // double-free on the replaced device.
        assert_eq!(m.process_releases(ready + Duration::from_secs(1)), Bytes::ZERO);
        assert_eq!(m.available(), Bytes::from_gib(64));
        // Repairing a healthy device is a no-op.
        assert_eq!(m.restore_emc(emc).unwrap(), Bytes::ZERO);
        // The repaired capacity is allocatable again.
        assert_eq!(m.allocate(HostId(3), Bytes::from_gib(2), ready).unwrap().len(), 2);
    }

    #[test]
    fn attaching_an_emc_expands_the_buffer_live() {
        let mut m = manager();
        let all = m.allocate(HostId(0), Bytes::from_gib(64), Duration::ZERO).unwrap();
        assert_eq!(all.len(), 64);
        assert_eq!(m.available(), Bytes::ZERO);
        let id = m.attach_emc(cxl_hw::emc::EmcConfig::pond_16_socket(Bytes::from_gib(8)));
        assert_eq!(m.available(), Bytes::from_gib(8));
        assert_eq!(m.pool().live_capacity(), Bytes::from_gib(72));
        m.assert_pending_conserved();
        let extra = m.allocate(HostId(1), Bytes::from_gib(8), Duration::ZERO).unwrap();
        assert!(extra.iter().all(|s| s.emc == id), "new slices come from the new device");
    }

    #[test]
    fn empty_release_is_a_noop() {
        let mut m = manager();
        assert_eq!(m.release_async(HostId(0), Vec::new(), Duration::ZERO).unwrap(), None);
        assert_eq!(m.pending_release(), Bytes::ZERO);
    }

    #[test]
    fn double_release_of_foreign_slices_fails() {
        let mut m = manager();
        let slices = m.allocate(HostId(0), Bytes::from_gib(2), Duration::ZERO).unwrap();
        assert!(m.release_async(HostId(1), slices, Duration::ZERO).is_err());
    }
}
