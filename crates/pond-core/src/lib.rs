//! # pond-core
//!
//! The core of the Pond reproduction (ASPLOS '23): the distributed
//! control-plane logic, the two ML prediction models, the combined-model
//! optimizer of Eq. (1), the QoS monitor with its mitigation path, and the
//! end-to-end memory-allocation policy that plugs into the cluster simulator.
//!
//! Layer map (paper section → module):
//!
//! * §4.2 pool memory ownership → [`pool_manager`] (on top of `cxl-hw`)
//! * §4.3 control-plane workflow (Figure 11) → [`control_plane`]
//! * §6.5 whole-fleet trace replay (Figures 19–20) → [`fleet`] (the control
//!   plane driven by `cluster-sim`'s time-ordered event core)
//! * §4.1 pool grouping at fleet scale → [`multipool`] (N pool groups on one
//!   event queue, pod topologies, group-aware scheduling)
//! * §4.4 latency-insensitivity model (Figure 12) → [`sensitivity`]
//! * §4.4 untouched-memory model (Figure 14) → [`untouched`]
//! * §4.4 Eq. (1) parameterization → [`combined`]
//! * §4.3 QoS monitoring and mitigation → [`qos`]
//! * §6.5 end-to-end policy (Figure 13 decision flow) → [`policy`]
//!
//! # Example
//!
//! Train both models and run the Pond policy over a synthetic cluster trace:
//!
//! ```
//! use pond_core::policy::{PondPolicy, PondPolicyConfig};
//! use cluster_sim::{Simulation, SimulationConfig, TraceGenerator, ClusterConfig};
//!
//! let trace = TraceGenerator::new(ClusterConfig::small(), 1).generate(0);
//! let policy = PondPolicy::train(&trace, &PondPolicyConfig::default(), 7);
//! let mut sim = Simulation::new(SimulationConfig::default(), policy);
//! let outcome = sim.run(&trace);
//! assert!(outcome.scheduled_vms > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
pub mod combined;
pub mod control_plane;
pub mod error;
pub mod fleet;
pub mod multipool;
pub mod policy;
pub mod pool_manager;
pub mod qos;
pub mod sensitivity;
pub mod untouched;

pub use arena::LiveVmArena;
pub use combined::{CombinedModel, CombinedModelConfig};
pub use error::PondError;
pub use fleet::{
    fleet_pool_sweep, fleet_pool_sweep_source, fleet_pool_sweep_with, run_fleet, run_fleet_source,
    run_fleet_source_observed, FleetConfig, FleetOutcome,
};
pub use multipool::{
    multipool_sweep, multipool_sweep_source, run_multipool_fleet, run_multipool_source,
    run_multipool_source_observed, GroupScheduler, GroupSchedulerKind, MultiPoolConfig,
    MultiPoolOutcome, MultiPoolSweepPoint, MultiPoolSweepSpec,
};
pub use policy::{PondPolicy, PondPolicyConfig};
pub use pool_manager::PondPoolManager;
pub use qos::{QosDecision, QosMonitor};
pub use sensitivity::{SensitivityModel, SensitivityModelConfig};
pub use untouched::{UntouchedMemoryModel, UntouchedModelConfig};
