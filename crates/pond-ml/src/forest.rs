//! Random-forest classifier — Pond's latency-insensitivity model family (§5).
//!
//! The paper trains a Scikit-learn `RandomForest` on ~200 core-PMU counters
//! to classify whether a workload's slowdown on pool memory stays within the
//! performance degradation margin. This module provides the equivalent:
//! bootstrap-aggregated CART trees with per-split feature subsampling,
//! returning a probability that can be thresholded to trade false positives
//! against coverage (Figure 17).

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};

/// Hyperparameters for the random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree growth parameters. When `max_features` is `None`, the forest
    /// uses `sqrt(n_features)` per split, the usual default for classification.
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig { trees: 100, tree: TreeConfig { max_depth: 10, ..Default::default() } }
    }
}

/// A fitted random-forest binary classifier.
///
/// Labels are interpreted as probabilities of the positive class, so training
/// labels should be 0.0 or 1.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fits a forest on the dataset. Deterministic for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config.trees` is zero.
    pub fn fit(data: &Dataset, config: &ForestConfig, seed: u64) -> Self {
        assert!(config.trees > 0, "a forest needs at least one tree");
        let mut tree_config = config.tree.clone();
        if tree_config.max_features.is_none() {
            let k = (data.n_features() as f64).sqrt().ceil() as usize;
            tree_config.max_features = Some(k.max(1));
        }
        let trees = (0..config.trees)
            .map(|i| {
                let tree_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i as u64);
                let sample = data.bootstrap(tree_seed);
                DecisionTree::fit(&sample, &tree_config, tree_seed ^ 0xABCD)
            })
            .collect();
        RandomForest { trees, n_features: data.n_features() }
    }

    /// Probability of the positive class for one feature vector
    /// (the mean of the trees' leaf values).
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from training.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature count mismatch");
        let sum: f64 = self.trees.iter().map(|t| t.predict(features)).sum();
        (sum / self.trees.len() as f64).clamp(0.0, 1.0)
    }

    /// Hard classification at a probability threshold.
    pub fn predict(&self, features: &[f64], threshold: f64) -> bool {
        self.predict_proba(features) >= threshold
    }

    /// Non-panicking [`RandomForest::predict_proba`] for online serving
    /// paths (one prediction per VM arrival), where a feature-schema
    /// mismatch should surface as an error instead of unwinding through the
    /// control plane.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] when the feature count
    /// differs from training.
    pub fn try_predict_proba(&self, features: &[f64]) -> Result<f64, MlError> {
        if features.len() != self.n_features {
            return Err(MlError::FeatureCountMismatch {
                got: features.len(),
                expected: self.n_features,
            });
        }
        Ok(self.predict_proba(features))
    }

    /// Non-panicking [`RandomForest::predict`]: the hard classification at a
    /// probability threshold, with the feature schema validated instead of
    /// asserted. This is what online serving paths (one decision per VM
    /// arrival, mid fleet replay) call, so a malformed feature row becomes
    /// an error the replay can propagate rather than a panic that takes the
    /// whole sweep down.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] when the feature count
    /// differs from training.
    pub fn try_predict(&self, features: &[f64], threshold: f64) -> Result<bool, MlError> {
        Ok(self.try_predict_proba(features)? >= threshold)
    }

    /// Probabilities for every row of a dataset.
    pub fn predict_proba_batch(&self, data: &Dataset) -> Result<Vec<f64>, MlError> {
        if data.n_features() != self.n_features {
            return Err(MlError::FeatureCountMismatch {
                got: data.n_features(),
                expected: self.n_features,
            });
        }
        Ok(data.rows().iter().map(|r| self.predict_proba(r)).collect())
    }

    /// Number of trees in the forest.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the forest was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Aggregated per-feature split counts across all trees (importance proxy).
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.n_features];
        for tree in &self.trees {
            for (i, c) in tree.feature_split_counts().into_iter().enumerate() {
                counts[i] += c;
            }
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.n_features];
        }
        counts.into_iter().map(|c| c as f64 / total as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    /// Synthetic classification task: positive iff x0 + x1 > 1.0, with two
    /// noise features.
    fn classification_data(n: usize, seed: u64) -> Dataset {
        let mut rng = Pcg64::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let noise0: f64 = rng.gen();
            let noise1: f64 = rng.gen();
            rows.push(vec![x0, x1, noise0, noise1]);
            labels.push(if x0 + x1 > 1.0 { 1.0 } else { 0.0 });
        }
        Dataset::new(vec!["x0".into(), "x1".into(), "n0".into(), "n1".into()], rows, labels)
            .unwrap()
    }

    #[test]
    fn forest_learns_a_linear_boundary() {
        let train = classification_data(600, 1);
        let test = classification_data(200, 2);
        let forest =
            RandomForest::fit(&train, &ForestConfig { trees: 40, ..Default::default() }, 0);
        let correct = test
            .rows()
            .iter()
            .zip(test.labels())
            .filter(|(row, &label)| forest.predict(row, 0.5) == (label > 0.5))
            .count();
        let accuracy = correct as f64 / test.len() as f64;
        assert!(accuracy > 0.85, "accuracy {accuracy}");
    }

    #[test]
    fn probabilities_are_calibrated_at_the_extremes() {
        let train = classification_data(600, 3);
        let forest =
            RandomForest::fit(&train, &ForestConfig { trees: 30, ..Default::default() }, 0);
        assert!(forest.predict_proba(&[0.95, 0.95, 0.5, 0.5]) > 0.8);
        assert!(forest.predict_proba(&[0.05, 0.05, 0.5, 0.5]) < 0.2);
    }

    #[test]
    fn fit_is_deterministic_for_a_seed() {
        let data = classification_data(200, 4);
        let a = RandomForest::fit(&data, &ForestConfig { trees: 10, ..Default::default() }, 42);
        let b = RandomForest::fit(&data, &ForestConfig { trees: 10, ..Default::default() }, 42);
        assert_eq!(a, b);
        let c = RandomForest::fit(&data, &ForestConfig { trees: 10, ..Default::default() }, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn try_predict_proba_reports_schema_mismatch_without_panicking() {
        let data = classification_data(100, 6);
        let forest = RandomForest::fit(&data, &ForestConfig { trees: 5, ..Default::default() }, 0);
        assert!(matches!(
            forest.try_predict_proba(&[0.5, 0.5]),
            Err(crate::MlError::FeatureCountMismatch { got: 2, expected: 4 })
        ));
        let good = forest.try_predict_proba(&[0.5, 0.5, 0.5, 0.5]).unwrap();
        assert_eq!(good, forest.predict_proba(&[0.5, 0.5, 0.5, 0.5]));
    }

    #[test]
    fn try_predict_propagates_schema_mismatch_instead_of_panicking() {
        // Regression: the hard-classification path used to go through the
        // asserting `predict`, so one malformed feature row unwound through
        // whatever replay was mid-flight. The row is one feature short and
        // one feature long; both must come back as errors, and a well-formed
        // row must agree with the panicking API exactly.
        let data = classification_data(100, 9);
        let forest = RandomForest::fit(&data, &ForestConfig { trees: 5, ..Default::default() }, 0);
        assert!(matches!(
            forest.try_predict(&[0.5, 0.5, 0.5], 0.5),
            Err(crate::MlError::FeatureCountMismatch { got: 3, expected: 4 })
        ));
        assert!(matches!(
            forest.try_predict(&[0.5; 5], 0.5),
            Err(crate::MlError::FeatureCountMismatch { got: 5, expected: 4 })
        ));
        let row = [0.9, 0.8, 0.5, 0.5];
        assert_eq!(forest.try_predict(&row, 0.5).unwrap(), forest.predict(&row, 0.5));
    }

    #[test]
    fn batch_prediction_checks_feature_count() {
        let data = classification_data(100, 5);
        let forest = RandomForest::fit(&data, &ForestConfig { trees: 5, ..Default::default() }, 0);
        assert_eq!(forest.predict_proba_batch(&data).unwrap().len(), 100);
        let wrong = Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![0.0]).unwrap();
        assert!(matches!(
            forest.predict_proba_batch(&wrong),
            Err(MlError::FeatureCountMismatch { .. })
        ));
    }

    #[test]
    fn importance_prefers_informative_features() {
        let data = classification_data(600, 6);
        let forest = RandomForest::fit(&data, &ForestConfig { trees: 30, ..Default::default() }, 0);
        let imp = forest.feature_importance();
        assert_eq!(imp.len(), 4);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] + imp[1] > imp[2] + imp[3], "informative features should dominate: {imp:?}");
    }

    #[test]
    fn forest_exposes_shape() {
        let data = classification_data(50, 7);
        let forest = RandomForest::fit(&data, &ForestConfig { trees: 7, ..Default::default() }, 0);
        assert_eq!(forest.n_trees(), 7);
        assert_eq!(forest.n_features(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let data = classification_data(10, 8);
        let _ = RandomForest::fit(&data, &ForestConfig { trees: 0, ..Default::default() }, 0);
    }
}
