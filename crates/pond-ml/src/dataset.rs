//! Feature matrices, labels, and deterministic splitting utilities.

use crate::error::MlError;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};

/// A dense dataset: named feature columns, one row per sample, one numeric
/// label per row. Classification tasks encode labels as 0.0 / 1.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset and validates its shape.
    ///
    /// # Errors
    ///
    /// * [`MlError::EmptyDataset`] if there are no rows.
    /// * [`MlError::LabelMismatch`] if `labels.len() != rows.len()`.
    /// * [`MlError::InconsistentRow`] if any row's length differs from the
    ///   number of feature names.
    pub fn new(
        feature_names: Vec<String>,
        rows: Vec<Vec<f64>>,
        labels: Vec<f64>,
    ) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if labels.len() != rows.len() {
            return Err(MlError::LabelMismatch { rows: rows.len(), labels: labels.len() });
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != feature_names.len() {
                return Err(MlError::InconsistentRow {
                    row: i,
                    got: row.len(),
                    expected: feature_names.len(),
                });
            }
        }
        Ok(Dataset { feature_names, rows, labels })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset has no rows. (Construction forbids this, but
    /// subset views can be empty.)
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Feature column names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The feature row for a sample.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The label for a sample.
    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Mean of the labels (useful as a base prediction).
    pub fn label_mean(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.labels.iter().sum::<f64>() / self.labels.len() as f64
        }
    }

    /// Builds a new dataset from a subset of row indices (rows are copied).
    /// Out-of-range indices are ignored.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut rows = Vec::with_capacity(indices.len());
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            if i < self.rows.len() {
                rows.push(self.rows[i].clone());
                labels.push(self.labels[i]);
            }
        }
        Dataset { feature_names: self.feature_names.clone(), rows, labels }
    }

    /// Splits the dataset into `(train, test)` with the given train fraction,
    /// shuffling deterministically with `seed`.
    ///
    /// The 100-fold validation in the paper's Figure 17 uses repeated random
    /// equal splits; calling this with `train_fraction = 0.5` and varying
    /// seeds reproduces that procedure.
    ///
    /// # Panics
    ///
    /// Panics unless `train_fraction` is within `(0, 1)`.
    pub fn train_test_split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(train_fraction > 0.0 && train_fraction < 1.0, "train fraction must be in (0, 1)");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = Pcg64::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.len().saturating_sub(1).max(1));
        (self.subset(&indices[..cut]), self.subset(&indices[cut..]))
    }

    /// Produces `k` cross-validation folds as `(train, test)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` exceeds the number of samples.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "k-fold requires k >= 2");
        assert!(k <= self.len(), "k-fold requires k <= number of samples");
        let mut indices: Vec<usize> = (0..self.len()).collect();
        let mut rng = Pcg64::seed_from_u64(seed);
        indices.shuffle(&mut rng);
        let fold_size = self.len().div_ceil(k);
        (0..k)
            .map(|fold| {
                let start = fold * fold_size;
                let end = ((fold + 1) * fold_size).min(self.len());
                let test_idx = &indices[start..end];
                let train_idx: Vec<usize> =
                    indices[..start].iter().chain(indices[end..].iter()).copied().collect();
                (self.subset(&train_idx), self.subset(test_idx))
            })
            .collect()
    }

    /// Draws a bootstrap sample (sampling rows with replacement) of the same
    /// size as the dataset. Used by the random forest.
    pub fn bootstrap(&self, seed: u64) -> Dataset {
        let mut rng = Pcg64::seed_from_u64(seed);
        let indices: Vec<usize> =
            (0..self.len()).map(|_| rand::Rng::gen_range(&mut rng, 0..self.len())).collect();
        self.subset(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * 2) as f64]).collect();
        let labels: Vec<f64> = (0..n).map(|i| i as f64).collect();
        Dataset::new(vec!["a".into(), "b".into()], rows, labels).unwrap()
    }

    #[test]
    fn construction_validates_shapes() {
        assert_eq!(Dataset::new(vec!["a".into()], vec![], vec![]), Err(MlError::EmptyDataset));
        assert_eq!(
            Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![]),
            Err(MlError::LabelMismatch { rows: 1, labels: 0 })
        );
        assert_eq!(
            Dataset::new(vec!["a".into()], vec![vec![1.0, 2.0]], vec![0.0]),
            Err(MlError::InconsistentRow { row: 0, got: 2, expected: 1 })
        );
    }

    #[test]
    fn accessors_work() {
        let d = toy(5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(2), &[2.0, 4.0]);
        assert_eq!(d.label(3), 3.0);
        assert_eq!(d.label_mean(), 2.0);
        assert_eq!(d.feature_names(), &["a".to_string(), "b".to_string()]);
        assert!(!d.is_empty());
    }

    #[test]
    fn subset_selects_rows_and_ignores_out_of_range() {
        let d = toy(5);
        let s = d.subset(&[0, 4, 99]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(1), 4.0);
    }

    #[test]
    fn train_test_split_partitions_all_rows() {
        let d = toy(100);
        let (train, test) = d.train_test_split(0.7, 42);
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(train.len(), 70);
        // Deterministic for a fixed seed.
        let (train2, _) = d.train_test_split(0.7, 42);
        assert_eq!(train.labels(), train2.labels());
        // Different seeds shuffle differently.
        let (train3, _) = d.train_test_split(0.7, 43);
        assert_ne!(train.labels(), train3.labels());
    }

    #[test]
    fn k_folds_cover_every_sample_exactly_once_as_test() {
        let d = toy(23);
        let folds = d.k_folds(4, 1);
        assert_eq!(folds.len(), 4);
        let total_test: usize = folds.iter().map(|(_, t)| t.len()).sum();
        assert_eq!(total_test, 23);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
        }
    }

    #[test]
    fn bootstrap_has_same_size_and_is_deterministic() {
        let d = toy(50);
        let b1 = d.bootstrap(7);
        let b2 = d.bootstrap(7);
        assert_eq!(b1.len(), 50);
        assert_eq!(b1.labels(), b2.labels());
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        toy(10).train_test_split(1.5, 0);
    }

    #[test]
    #[should_panic(expected = "k-fold requires k >= 2")]
    fn k_folds_rejects_k1() {
        toy(10).k_folds(1, 0);
    }

    proptest! {
        /// Splits partition the dataset for any valid fraction.
        #[test]
        fn split_partition_property(n in 2usize..200, frac in 0.05f64..0.95, seed in 0u64..1000) {
            let d = toy(n);
            let (train, test) = d.train_test_split(frac, seed);
            prop_assert_eq!(train.len() + test.len(), n);
            prop_assert!(!train.is_empty());
        }
    }
}
