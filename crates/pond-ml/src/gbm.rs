//! Gradient-boosted regression trees with quantile (pinball) loss — the
//! untouched-memory model family (§4.4, §5).
//!
//! The paper predicts the *minimum* untouched memory over a VM's lifetime
//! with a LightGBM quantile regression at a configurable target percentile;
//! predicting a low quantile makes the model conservative, which is what
//! keeps overpredictions (VMs that touch more than predicted) rare. This
//! module implements the same idea: boosted CART trees whose leaf values are
//! per-leaf residual quantiles.

use crate::dataset::Dataset;
use crate::error::MlError;
use crate::tree::{DecisionTree, TreeConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Loss function for gradient boosting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Ordinary least squares (predicts the conditional mean).
    SquaredError,
    /// Pinball loss at quantile `q` (predicts the conditional `q`-quantile).
    Quantile(f64),
}

/// Hyperparameters for the boosted model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbmConfig {
    /// Number of boosting rounds.
    pub rounds: usize,
    /// Shrinkage applied to every tree's contribution.
    pub learning_rate: f64,
    /// The loss to optimize.
    pub loss: Loss,
    /// Per-tree growth parameters (boosted trees are usually shallow).
    pub tree: TreeConfig,
}

impl Default for GbmConfig {
    fn default() -> Self {
        GbmConfig {
            rounds: 100,
            learning_rate: 0.1,
            loss: Loss::SquaredError,
            tree: TreeConfig { max_depth: 4, min_samples_leaf: 5, ..Default::default() },
        }
    }
}

impl GbmConfig {
    /// Configuration matching the paper's untouched-memory model: quantile
    /// regression at the given target percentile (e.g. 0.05 predicts a value
    /// the VM's true untouched memory exceeds 95% of the time).
    pub fn quantile(q: f64) -> Self {
        GbmConfig { loss: Loss::Quantile(q), ..Default::default() }
    }
}

/// A fitted gradient-boosted tree ensemble.
///
/// # Example
///
/// ```
/// use pond_ml::dataset::Dataset;
/// use pond_ml::gbm::{GbmConfig, GradientBoostedTrees};
///
/// let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 100) as f64]).collect();
/// let labels: Vec<f64> = rows.iter().map(|r| r[0] * 2.0 + 5.0).collect();
/// let data = Dataset::new(vec!["x".into()], rows, labels)?;
/// let model = GradientBoostedTrees::fit(&data, &GbmConfig::default(), 0);
/// let pred = model.predict(&[50.0]);
/// assert!((pred - 105.0).abs() < 10.0);
/// # Ok::<(), pond_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    base_prediction: f64,
    learning_rate: f64,
    trees: Vec<DecisionTree>,
    n_features: usize,
    loss: Loss,
}

fn quantile_of(sorted: &mut [f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

impl GradientBoostedTrees {
    /// Fits the boosted ensemble. Deterministic for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero, the learning rate is not in `(0, 1]`, or a
    /// quantile loss is configured with `q` outside `(0, 1)`.
    pub fn fit(data: &Dataset, config: &GbmConfig, seed: u64) -> Self {
        assert!(config.rounds > 0, "boosting needs at least one round");
        assert!(
            config.learning_rate > 0.0 && config.learning_rate <= 1.0,
            "learning rate must be in (0, 1]"
        );
        if let Loss::Quantile(q) = config.loss {
            assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        }

        let base_prediction = match config.loss {
            Loss::SquaredError => data.label_mean(),
            Loss::Quantile(q) => {
                let mut labels = data.labels().to_vec();
                quantile_of(&mut labels, q)
            }
        };

        let mut predictions = vec![base_prediction; data.len()];
        let mut trees = Vec::with_capacity(config.rounds);

        for round in 0..config.rounds {
            // Pseudo-residuals: negative gradient of the loss at the current
            // predictions.
            let residuals: Vec<f64> = match config.loss {
                Loss::SquaredError => {
                    (0..data.len()).map(|i| data.label(i) - predictions[i]).collect()
                }
                Loss::Quantile(q) => (0..data.len())
                    .map(|i| if data.label(i) > predictions[i] { q } else { q - 1.0 })
                    .collect(),
            };

            let tree_seed = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(round as u64);
            let mut tree =
                DecisionTree::fit_with_targets(data, &residuals, &config.tree, tree_seed);

            if let Loss::Quantile(q) = config.loss {
                // Replace leaf means of the gradient with the per-leaf
                // q-quantile of the raw residuals (y - F), the standard
                // post-fit adjustment for quantile boosting.
                let mut leaf_residuals: HashMap<usize, Vec<f64>> = HashMap::new();
                for (i, &prediction) in predictions.iter().enumerate() {
                    let leaf = tree.leaf_id(data.row(i));
                    leaf_residuals.entry(leaf).or_default().push(data.label(i) - prediction);
                }
                tree.adjust_leaves(|leaf, value| match leaf_residuals.get_mut(&leaf) {
                    Some(rs) => quantile_of(rs, q),
                    None => value,
                });
            }

            for (i, pred) in predictions.iter_mut().enumerate() {
                *pred += config.learning_rate * tree.predict(data.row(i));
            }
            trees.push(tree);
        }

        GradientBoostedTrees {
            base_prediction,
            learning_rate: config.learning_rate,
            trees,
            n_features: data.n_features(),
            loss: config.loss,
        }
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the feature count differs from training.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature count mismatch");
        self.base_prediction
            + self.learning_rate * self.trees.iter().map(|t| t.predict(features)).sum::<f64>()
    }

    /// Non-panicking [`GradientBoostedTrees::predict`] for online serving
    /// paths (one prediction per VM arrival), where a feature-schema
    /// mismatch should surface as an error instead of unwinding through the
    /// control plane.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureCountMismatch`] when the feature count
    /// differs from training.
    pub fn try_predict(&self, features: &[f64]) -> Result<f64, MlError> {
        if features.len() != self.n_features {
            return Err(MlError::FeatureCountMismatch {
                got: features.len(),
                expected: self.n_features,
            });
        }
        Ok(self.predict(features))
    }

    /// Predictions for every row of a dataset.
    pub fn predict_batch(&self, data: &Dataset) -> Result<Vec<f64>, MlError> {
        if data.n_features() != self.n_features {
            return Err(MlError::FeatureCountMismatch {
                got: data.n_features(),
                expected: self.n_features,
            });
        }
        Ok(data.rows().iter().map(|r| self.predict(r)).collect())
    }

    /// Number of boosting rounds in the fitted model.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The loss that was optimized.
    pub fn loss(&self) -> Loss {
        self.loss
    }

    /// Number of features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_pcg::Pcg64;

    fn linear_data(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = Pcg64::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>() * 10.0]).collect();
        let labels: Vec<f64> =
            rows.iter().map(|r| 3.0 * r[0] + 2.0 + (rng.gen::<f64>() - 0.5) * noise).collect();
        Dataset::new(vec!["x".into()], rows, labels).unwrap()
    }

    #[test]
    fn try_predict_reports_schema_mismatch_without_panicking() {
        let data = linear_data(100, 0.0, 9);
        let model = GradientBoostedTrees::fit(&data, &GbmConfig::default(), 0);
        assert!(matches!(
            model.try_predict(&[1.0, 2.0]),
            Err(crate::MlError::FeatureCountMismatch { got: 2, expected: 1 })
        ));
        assert_eq!(model.try_predict(&[4.0]).unwrap(), model.predict(&[4.0]));
    }

    #[test]
    fn squared_error_fits_a_linear_function() {
        let data = linear_data(400, 0.0, 1);
        let model = GradientBoostedTrees::fit(&data, &GbmConfig::default(), 0);
        for x in [1.0, 5.0, 9.0] {
            let pred = model.predict(&[x]);
            let truth = 3.0 * x + 2.0;
            assert!((pred - truth).abs() < 2.0, "x={x}: pred {pred} vs {truth}");
        }
    }

    #[test]
    fn quantile_loss_brackets_the_distribution() {
        // Labels are uniform in [0, 10], independent of the feature. The 10th
        // percentile prediction should land near 1 and the 90th near 9.
        let mut rng = Pcg64::seed_from_u64(2);
        let rows: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.gen::<f64>()]).collect();
        let labels: Vec<f64> = (0..2000).map(|_| rng.gen::<f64>() * 10.0).collect();
        let data = Dataset::new(vec!["x".into()], rows, labels).unwrap();

        let low = GradientBoostedTrees::fit(&data, &GbmConfig::quantile(0.1), 0);
        let high = GradientBoostedTrees::fit(&data, &GbmConfig::quantile(0.9), 0);
        let p_low = low.predict(&[0.5]);
        let p_high = high.predict(&[0.5]);
        assert!(p_low < p_high, "quantiles must be ordered: {p_low} vs {p_high}");
        assert!((0.0..=3.5).contains(&p_low), "10th percentile ~1, got {p_low}");
        assert!((6.5..=10.0).contains(&p_high), "90th percentile ~9, got {p_high}");
    }

    #[test]
    fn quantile_coverage_matches_target() {
        // For a conditional model, roughly (1-q) of samples should fall below
        // the q-quantile prediction... i.e. q of samples are >= prediction
        // when predicting a low quantile.
        let data = linear_data(800, 4.0, 3);
        let q = 0.2;
        let model = GradientBoostedTrees::fit(&data, &GbmConfig::quantile(q), 0);
        let below = (0..data.len()).filter(|&i| data.label(i) < model.predict(data.row(i))).count()
            as f64
            / data.len() as f64;
        assert!((below - q).abs() < 0.1, "fraction below the {q}-quantile prediction was {below}");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let data = linear_data(300, 1.0, 4);
        let small =
            GradientBoostedTrees::fit(&data, &GbmConfig { rounds: 5, ..Default::default() }, 0);
        let large =
            GradientBoostedTrees::fit(&data, &GbmConfig { rounds: 200, ..Default::default() }, 0);
        let mse = |m: &GradientBoostedTrees| {
            (0..data.len()).map(|i| (m.predict(data.row(i)) - data.label(i)).powi(2)).sum::<f64>()
                / data.len() as f64
        };
        assert!(mse(&large) < mse(&small));
        assert_eq!(large.n_trees(), 200);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let data = linear_data(100, 1.0, 5);
        let a = GradientBoostedTrees::fit(&data, &GbmConfig::default(), 9);
        let b = GradientBoostedTrees::fit(&data, &GbmConfig::default(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_prediction_validates_features() {
        let data = linear_data(50, 1.0, 6);
        let model =
            GradientBoostedTrees::fit(&data, &GbmConfig { rounds: 5, ..Default::default() }, 0);
        assert_eq!(model.predict_batch(&data).unwrap().len(), 50);
        let wrong =
            Dataset::new(vec!["a".into(), "b".into()], vec![vec![1.0, 2.0]], vec![0.0]).unwrap();
        assert!(model.predict_batch(&wrong).is_err());
    }

    #[test]
    fn loss_and_shape_are_exposed() {
        let data = linear_data(50, 1.0, 7);
        let model = GradientBoostedTrees::fit(&data, &GbmConfig::quantile(0.3), 0);
        assert_eq!(model.loss(), Loss::Quantile(0.3));
        assert_eq!(model.n_features(), 1);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn invalid_quantile_rejected() {
        let data = linear_data(20, 1.0, 8);
        let _ = GradientBoostedTrees::fit(&data, &GbmConfig::quantile(1.5), 0);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn invalid_learning_rate_rejected() {
        let data = linear_data(20, 1.0, 8);
        let _ = GradientBoostedTrees::fit(
            &data,
            &GbmConfig { learning_rate: 0.0, ..Default::default() },
            0,
        );
    }
}
