//! # pond-ml
//!
//! The machine-learning substrate behind Pond's two prediction models
//! (ASPLOS '23, §4.4 and §5):
//!
//! * a **random-forest classifier** for the latency-insensitivity model
//!   (the paper uses Scikit-learn's `RandomForest` over ~200 core-PMU
//!   counters), and
//! * **gradient-boosted regression trees with quantile (pinball) loss** for
//!   the untouched-memory model (the paper uses LightGBM's GBM with a
//!   configurable target percentile).
//!
//! Both are implemented from scratch on top of a shared CART decision-tree
//! learner, plus dataset handling and the evaluation curves the paper plots
//! (false-positive rate vs. fraction marked insensitive, overprediction rate
//! vs. average untouched memory).
//!
//! # Example
//!
//! ```
//! use pond_ml::dataset::Dataset;
//! use pond_ml::forest::{RandomForest, ForestConfig};
//!
//! // A toy dataset: label is 1.0 when the first feature is above 0.5.
//! let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 100) as f64 / 100.0, 1.0]).collect();
//! let labels: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 }).collect();
//! let data = Dataset::new(vec!["x".into(), "bias".into()], rows, labels)?;
//!
//! let forest = RandomForest::fit(&data, &ForestConfig { trees: 20, ..Default::default() }, 7);
//! let p_high = forest.predict_proba(&[0.9, 1.0]);
//! let p_low = forest.predict_proba(&[0.1, 1.0]);
//! assert!(p_high > 0.8 && p_low < 0.2);
//! # Ok::<(), pond_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod error;
pub mod eval;
pub mod forest;
pub mod gbm;
pub mod tree;

pub use dataset::Dataset;
pub use error::MlError;
pub use forest::{ForestConfig, RandomForest};
pub use gbm::{GbmConfig, GradientBoostedTrees};
pub use tree::{DecisionTree, TreeConfig};
