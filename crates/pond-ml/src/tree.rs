//! CART regression trees — the shared building block for the random forest
//! and the gradient-boosted model.
//!
//! Trees are grown greedily with variance-reduction (MSE) splits. Binary
//! classification reuses the same machinery by encoding labels as 0.0/1.0 and
//! reading leaf means as probabilities.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};

/// Hyperparameters controlling tree growth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples that must land in each child.
    pub min_samples_leaf: usize,
    /// If set, only this many randomly-chosen features are considered per
    /// split (random-forest style feature subsampling).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 8, min_samples_split: 2, min_samples_leaf: 1, max_features: None }
    }
}

/// A node in the fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Identifier of the leaf (used by gradient boosting to adjust values).
        id: usize,
        /// Predicted value.
        value: f64,
        /// Number of training samples that reached the leaf.
        samples: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART regression tree.
///
/// # Example
///
/// ```
/// use pond_ml::dataset::Dataset;
/// use pond_ml::tree::{DecisionTree, TreeConfig};
///
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
/// let labels: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 10.0 }).collect();
/// let data = Dataset::new(vec!["x".into()], rows, labels)?;
/// let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
/// assert!(tree.predict(&[10.0]) < 1.0);
/// assert!(tree.predict(&[90.0]) > 9.0);
/// # Ok::<(), pond_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
    n_leaves: usize,
}

struct Builder<'a> {
    rows: &'a [Vec<f64>],
    targets: &'a [f64],
    config: &'a TreeConfig,
    rng: Pcg64,
    next_leaf_id: usize,
}

impl<'a> Builder<'a> {
    fn leaf(&mut self, indices: &[usize]) -> Node {
        let value = if indices.is_empty() {
            0.0
        } else {
            indices.iter().map(|&i| self.targets[i]).sum::<f64>() / indices.len() as f64
        };
        let id = self.next_leaf_id;
        self.next_leaf_id += 1;
        Node::Leaf { id, value, samples: indices.len() }
    }

    fn build(&mut self, indices: &mut [usize], depth: usize) -> Node {
        if depth >= self.config.max_depth
            || indices.len() < self.config.min_samples_split
            || indices.len() < 2 * self.config.min_samples_leaf
        {
            return self.leaf(indices);
        }
        match self.best_split(indices) {
            None => self.leaf(indices),
            Some((feature, threshold)) => {
                let (mut left, mut right): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| self.rows[i][feature] <= threshold);
                if left.len() < self.config.min_samples_leaf
                    || right.len() < self.config.min_samples_leaf
                {
                    return self.leaf(indices);
                }
                let left_node = self.build(&mut left, depth + 1);
                let right_node = self.build(&mut right, depth + 1);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left_node),
                    right: Box::new(right_node),
                }
            }
        }
    }

    /// Finds the (feature, threshold) pair with the greatest reduction in the
    /// sum of squared errors, or `None` when no split improves on the parent.
    fn best_split(&mut self, indices: &[usize]) -> Option<(usize, f64)> {
        let n_features = self.rows[indices[0]].len();
        let mut candidates: Vec<usize> = (0..n_features).collect();
        if let Some(k) = self.config.max_features {
            candidates.shuffle(&mut self.rng);
            candidates.truncate(k.max(1).min(n_features));
        }

        let total_sum: f64 = indices.iter().map(|&i| self.targets[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| self.targets[i].powi(2)).sum();
        let n = indices.len() as f64;
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &feature in &candidates {
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                self.rows[a][feature]
                    .partial_cmp(&self.rows[b][feature])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });

            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split_at in 1..order.len() {
                let prev = order[split_at - 1];
                left_sum += self.targets[prev];
                left_sq += self.targets[prev].powi(2);

                let prev_val = self.rows[prev][feature];
                let cur_val = self.rows[order[split_at]][feature];
                if prev_val == cur_val {
                    continue; // cannot split between identical values
                }
                let left_n = split_at as f64;
                let right_n = n - left_n;
                if (split_at < self.config.min_samples_leaf)
                    || ((order.len() - split_at) < self.config.min_samples_leaf)
                {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse = (left_sq - left_sum * left_sum / left_n)
                    + (right_sq - right_sum * right_sum / right_n);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((feature, (prev_val + cur_val) / 2.0, sse));
                }
            }
        }
        match best {
            Some((feature, threshold, sse)) if sse < parent_sse - 1e-12 => {
                Some((feature, threshold))
            }
            _ => None,
        }
    }
}

impl DecisionTree {
    /// Fits a tree on the dataset's own labels.
    pub fn fit(data: &Dataset, config: &TreeConfig, seed: u64) -> Self {
        Self::fit_with_targets(data, data.labels(), config, seed)
    }

    /// Fits a tree predicting arbitrary `targets` (one per dataset row) —
    /// the entry point gradient boosting uses to fit pseudo-residuals.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of rows.
    pub fn fit_with_targets(
        data: &Dataset,
        targets: &[f64],
        config: &TreeConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(targets.len(), data.len(), "one target per row is required");
        let mut builder = Builder {
            rows: data.rows(),
            targets,
            config,
            rng: Pcg64::seed_from_u64(seed),
            next_leaf_id: 0,
        };
        let mut indices: Vec<usize> = (0..data.len()).collect();
        let root = if indices.is_empty() {
            builder.leaf(&indices)
        } else {
            builder.build(&mut indices, 0)
        };
        DecisionTree { root, n_features: data.n_features(), n_leaves: builder.next_leaf_id }
    }

    /// Predicts the value for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from the training feature count.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature count mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value, .. } => return *value,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Returns the id of the leaf a feature vector falls into.
    pub fn leaf_id(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.n_features, "feature count mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { id, .. } => return *id,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Replaces each leaf value with `f(leaf_id, current_value)`.
    /// Gradient-boosted quantile regression uses this to set leaves to
    /// per-leaf residual quantiles rather than means.
    pub fn adjust_leaves<F>(&mut self, mut f: F)
    where
        F: FnMut(usize, f64) -> f64,
    {
        fn walk<F: FnMut(usize, f64) -> f64>(node: &mut Node, f: &mut F) {
            match node {
                Node::Leaf { id, value, .. } => *value = f(*id, *value),
                Node::Split { left, right, .. } => {
                    walk(left, f);
                    walk(right, f);
                }
            }
        }
        walk(&mut self.root, &mut f);
    }

    /// Number of leaves in the tree.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// Number of features the tree was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }

    /// Per-feature split counts, a crude importance measure.
    pub fn feature_split_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_features];
        fn walk(node: &Node, counts: &mut [usize]) {
            if let Node::Split { feature, left, right, .. } = node {
                counts[*feature] += 1;
                walk(left, counts);
                walk(right, counts);
            }
        }
        walk(&self.root, &mut counts);
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_dataset(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 1.0]).collect();
        let labels: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.0 } else { 1.0 }).collect();
        Dataset::new(vec!["x".into(), "bias".into()], rows, labels).unwrap()
    }

    #[test]
    fn learns_a_step_function() {
        let data = step_dataset(100);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        assert!(tree.predict(&[5.0, 1.0]) < 0.1);
        assert!(tree.predict(&[95.0, 1.0]) > 0.9);
        assert!(tree.depth() >= 1);
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn constant_labels_yield_a_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels = vec![3.5; 20];
        let data = Dataset::new(vec!["x".into()], rows, labels).unwrap();
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[100.0]), 3.5);
    }

    #[test]
    fn max_depth_zero_predicts_the_mean() {
        let data = step_dataset(10);
        let tree = DecisionTree::fit(&data, &TreeConfig { max_depth: 0, ..Default::default() }, 0);
        assert!((tree.predict(&[0.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let data = step_dataset(10);
        let tree =
            DecisionTree::fit(&data, &TreeConfig { min_samples_leaf: 6, ..Default::default() }, 0);
        // A split would require two children of >= 6 samples out of 10 — impossible.
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn fit_with_targets_overrides_labels() {
        let data = step_dataset(40);
        let targets: Vec<f64> = (0..40).map(|i| i as f64 * 2.0).collect();
        let tree = DecisionTree::fit_with_targets(&data, &targets, &TreeConfig::default(), 0);
        let lo = tree.predict(&[2.0, 1.0]);
        let hi = tree.predict(&[38.0, 1.0]);
        assert!(hi > lo + 10.0);
    }

    #[test]
    fn leaf_ids_are_stable_and_adjustable() {
        let data = step_dataset(100);
        let mut tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        let id_low = tree.leaf_id(&[1.0, 1.0]);
        let id_high = tree.leaf_id(&[99.0, 1.0]);
        assert_ne!(id_low, id_high);
        tree.adjust_leaves(|id, v| if id == id_low { -5.0 } else { v });
        assert_eq!(tree.predict(&[1.0, 1.0]), -5.0);
        assert!(tree.predict(&[99.0, 1.0]) > 0.9);
    }

    #[test]
    fn feature_split_counts_identify_the_informative_feature() {
        let data = step_dataset(100);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        let counts = tree.feature_split_counts();
        assert!(counts[0] >= 1, "feature 0 is informative: {counts:?}");
        assert_eq!(counts[1], 0, "constant bias feature should never be split on");
    }

    #[test]
    fn feature_subsampling_still_produces_a_tree() {
        let data = step_dataset(60);
        let tree = DecisionTree::fit(
            &data,
            &TreeConfig { max_features: Some(1), ..Default::default() },
            3,
        );
        assert_eq!(tree.n_features(), 2);
        // The tree may occasionally pick the useless feature at the root, but
        // prediction must still work.
        let _ = tree.predict(&[10.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_rejects_wrong_arity() {
        let data = step_dataset(10);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
        let _ = tree.predict(&[1.0]);
    }

    proptest! {
        /// The tree's predictions on its own training points achieve an MSE
        /// no worse than predicting the mean (it can only refine the mean).
        #[test]
        fn never_worse_than_the_mean(labels in proptest::collection::vec(-10.0f64..10.0, 10..60)) {
            let rows: Vec<Vec<f64>> = (0..labels.len()).map(|i| vec![i as f64]).collect();
            let data = Dataset::new(vec!["x".into()], rows, labels.clone()).unwrap();
            let tree = DecisionTree::fit(&data, &TreeConfig::default(), 0);
            let mean = data.label_mean();
            let mse_tree: f64 = (0..data.len())
                .map(|i| (tree.predict(data.row(i)) - data.label(i)).powi(2))
                .sum::<f64>() / data.len() as f64;
            let mse_mean: f64 = labels.iter().map(|y| (y - mean).powi(2)).sum::<f64>() / labels.len() as f64;
            prop_assert!(mse_tree <= mse_mean + 1e-9);
        }

        /// Deeper trees never increase training error.
        #[test]
        fn deeper_is_no_worse_on_training_data(seed in 0u64..50) {
            let n = 64usize;
            let mut rng_vals: Vec<f64> = Vec::with_capacity(n);
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            for _ in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng_vals.push(((state >> 33) as f64) / (u32::MAX as f64) * 10.0);
            }
            let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
            let data = Dataset::new(vec!["x".into()], rows, rng_vals).unwrap();
            let shallow = DecisionTree::fit(&data, &TreeConfig { max_depth: 2, ..Default::default() }, 0);
            let deep = DecisionTree::fit(&data, &TreeConfig { max_depth: 6, ..Default::default() }, 0);
            let mse = |t: &DecisionTree| -> f64 {
                (0..data.len()).map(|i| (t.predict(data.row(i)) - data.label(i)).powi(2)).sum::<f64>() / data.len() as f64
            };
            prop_assert!(mse(&deep) <= mse(&shallow) + 1e-9);
        }
    }
}
