//! Model-evaluation utilities: confusion matrices, the false-positive
//! trade-off curve from Figure 17, and the overprediction metrics from
//! Figure 18.
//!
//! Conventions follow the paper: a *false positive* of the latency
//! insensitivity model is a workload marked insensitive whose slowdown
//! actually exceeds the PDM, reported as a percentage of **all** workloads
//! (so Eq. (1)'s `FP + OP ≤ 100 − TP` adds up); an *overprediction* of the
//! untouched-memory model is a VM that touches more memory than predicted.

use serde::{Deserialize, Serialize};

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Predicted positive, actually positive.
    pub true_positives: usize,
    /// Predicted positive, actually negative.
    pub false_positives: usize,
    /// Predicted negative, actually negative.
    pub true_negatives: usize,
    /// Predicted negative, actually positive.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix by thresholding scores: a sample is predicted
    /// positive when `score >= threshold`; it is actually positive when its
    /// label is `>= 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `scores` and `labels` have different lengths.
    pub fn from_scores(scores: &[f64], labels: &[f64], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores and labels must align");
        let mut m = ConfusionMatrix::default();
        for (&s, &l) in scores.iter().zip(labels) {
            let predicted = s >= threshold;
            let actual = l >= 0.5;
            match (predicted, actual) {
                (true, true) => m.true_positives += 1,
                (true, false) => m.false_positives += 1,
                (false, false) => m.true_negatives += 1,
                (false, true) => m.false_negatives += 1,
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of samples classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Precision: TP / (TP + FP). Zero when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall: TP / (TP + FN). Zero when there are no actual positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Fraction of all samples that were predicted positive.
    pub fn positive_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.false_positives) as f64 / self.total() as f64
    }

    /// False positives as a fraction of **all** samples — the paper's FP
    /// metric in Figure 17 and Eq. (1).
    pub fn false_positive_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.false_positives as f64 / self.total() as f64
    }
}

/// One point on the FP-vs-coverage curve (Figure 17).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Score threshold used for this point.
    pub threshold: f64,
    /// Fraction of workloads labeled positive (latency-insensitive).
    pub positive_fraction: f64,
    /// False positives as a fraction of all workloads.
    pub false_positive_fraction: f64,
}

/// Sweeps the score threshold and reports the trade-off between coverage
/// (how many workloads are marked positive) and false positives, sorted by
/// increasing coverage.
///
/// # Panics
///
/// Panics if `scores` and `labels` have different lengths or `steps == 0`.
pub fn threshold_sweep(scores: &[f64], labels: &[f64], steps: usize) -> Vec<OperatingPoint> {
    assert_eq!(scores.len(), labels.len(), "scores and labels must align");
    assert!(steps > 0, "at least one threshold step is required");
    let mut points: Vec<OperatingPoint> = (0..=steps)
        .map(|i| {
            let threshold = i as f64 / steps as f64;
            let m = ConfusionMatrix::from_scores(scores, labels, threshold);
            OperatingPoint {
                threshold,
                positive_fraction: m.positive_fraction(),
                false_positive_fraction: m.false_positive_fraction(),
            }
        })
        .collect();
    points.sort_by(|a, b| {
        a.positive_fraction.partial_cmp(&b.positive_fraction).unwrap_or(std::cmp::Ordering::Equal)
    });
    points
}

/// Picks the operating point with the largest coverage whose false-positive
/// fraction stays at or below `fp_budget`. Returns `None` when even the most
/// conservative point exceeds the budget.
pub fn best_point_within_fp_budget(
    points: &[OperatingPoint],
    fp_budget: f64,
) -> Option<OperatingPoint> {
    points
        .iter()
        .filter(|p| p.false_positive_fraction <= fp_budget)
        .max_by(|a, b| {
            a.positive_fraction
                .partial_cmp(&b.positive_fraction)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .copied()
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_squared_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "predictions and targets must align");
    assert!(!predictions.is_empty(), "cannot compute the MSE of nothing");
    predictions.iter().zip(targets).map(|(p, t)| (p - t).powi(2)).sum::<f64>()
        / predictions.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "predictions and targets must align");
    assert!(!predictions.is_empty(), "cannot compute the MAE of nothing");
    predictions.iter().zip(targets).map(|(p, t)| (p - t).abs()).sum::<f64>()
        / predictions.len() as f64
}

/// Pinball (quantile) loss at quantile `q` — the loss the untouched-memory
/// model optimizes.
///
/// # Panics
///
/// Panics if the slices have different lengths, are empty, or `q` is outside `(0, 1)`.
pub fn pinball_loss(predictions: &[f64], targets: &[f64], q: f64) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "predictions and targets must align");
    assert!(!predictions.is_empty(), "cannot compute the pinball loss of nothing");
    assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| {
            let diff = t - p;
            if diff >= 0.0 {
                q * diff
            } else {
                (q - 1.0) * diff
            }
        })
        .sum::<f64>()
        / predictions.len() as f64
}

/// Fraction of samples whose prediction exceeds the actual value — the
/// "overprediction" rate of the untouched-memory model (Figure 18): the VM
/// would spill into its zNUMA node because less memory was untouched than
/// predicted.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn overprediction_rate(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "predicted and actual must align");
    assert!(!predicted.is_empty(), "cannot compute an overprediction rate of nothing");
    predicted.iter().zip(actual).filter(|(p, a)| p > a).count() as f64 / predicted.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn confusion_matrix_counts() {
        let scores = [0.9, 0.8, 0.2, 0.1];
        let labels = [1.0, 0.0, 1.0, 0.0];
        let m = ConfusionMatrix::from_scores(&scores, &labels, 0.5);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.true_negatives, 1);
        assert_eq!(m.total(), 4);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.precision(), 0.5);
        assert_eq!(m.recall(), 0.5);
        assert_eq!(m.positive_fraction(), 0.5);
        assert_eq!(m.false_positive_fraction(), 0.25);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let m = ConfusionMatrix::from_scores(&[], &[], 0.5);
        assert_eq!(m.total(), 0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.false_positive_fraction(), 0.0);
    }

    #[test]
    fn threshold_sweep_is_monotone_in_coverage() {
        let scores: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels: Vec<f64> = (0..100).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        let points = threshold_sweep(&scores, &labels, 20);
        assert_eq!(points.len(), 21);
        for pair in points.windows(2) {
            assert!(pair[1].positive_fraction >= pair[0].positive_fraction);
            // False positives can only grow as more items are marked positive.
            assert!(pair[1].false_positive_fraction >= pair[0].false_positive_fraction - 1e-12);
        }
    }

    #[test]
    fn best_point_respects_the_budget() {
        let scores = [0.95, 0.9, 0.6, 0.4, 0.2];
        let labels = [1.0, 1.0, 0.0, 1.0, 0.0];
        let points = threshold_sweep(&scores, &labels, 100);
        let pick = best_point_within_fp_budget(&points, 0.0).unwrap();
        assert!(pick.false_positive_fraction <= 0.0 + 1e-12);
        assert!(pick.positive_fraction >= 0.4 - 1e-12, "both clean positives are reachable");
        let generous = best_point_within_fp_budget(&points, 1.0).unwrap();
        assert!(generous.positive_fraction >= pick.positive_fraction);
    }

    #[test]
    fn regression_metrics() {
        let preds = [1.0, 2.0, 3.0];
        let targets = [1.0, 3.0, 1.0];
        assert!((mean_squared_error(&preds, &targets) - 5.0 / 3.0).abs() < 1e-12);
        assert!((mean_absolute_error(&preds, &targets) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pinball_loss_penalizes_asymmetrically() {
        // Under-predictions are penalized by q, over-predictions by 1-q.
        let under = pinball_loss(&[0.0], &[1.0], 0.1);
        let over = pinball_loss(&[1.0], &[0.0], 0.1);
        assert!((under - 0.1).abs() < 1e-12);
        assert!((over - 0.9).abs() < 1e-12);
    }

    #[test]
    fn overprediction_rate_counts_spills() {
        let predicted = [0.5, 0.2, 0.9, 0.0];
        let actual = [0.4, 0.3, 0.9, 0.1];
        // Only the first element predicts more untouched memory than reality.
        assert_eq!(overprediction_rate(&predicted, &actual), 0.25);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_rejected() {
        let _ = overprediction_rate(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        /// Accuracy, precision, recall and the FP fraction are all within [0, 1].
        #[test]
        fn metrics_are_bounded(
            scores in proptest::collection::vec(0.0f64..1.0, 1..50),
            threshold in 0.0f64..1.0,
            seed in 0u64..100
        ) {
            let labels: Vec<f64> = scores.iter().enumerate()
                .map(|(i, _)| if (i as u64 + seed) % 3 == 0 { 1.0 } else { 0.0 })
                .collect();
            let m = ConfusionMatrix::from_scores(&scores, &labels, threshold);
            for v in [m.accuracy(), m.precision(), m.recall(), m.positive_fraction(), m.false_positive_fraction()] {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            prop_assert_eq!(m.total(), scores.len());
        }

        /// The pinball loss is always non-negative and zero for perfect predictions.
        #[test]
        fn pinball_loss_properties(targets in proptest::collection::vec(-5.0f64..5.0, 1..30), q in 0.01f64..0.99) {
            let loss_perfect = pinball_loss(&targets, &targets, q);
            prop_assert!(loss_perfect.abs() < 1e-12);
            let shifted: Vec<f64> = targets.iter().map(|t| t + 1.0).collect();
            prop_assert!(pinball_loss(&shifted, &targets, q) > 0.0);
        }
    }
}
