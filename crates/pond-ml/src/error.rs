//! Error type for the ML substrate.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing datasets or fitting/evaluating models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// The dataset has no rows.
    EmptyDataset,
    /// A row's feature count does not match the declared feature names.
    InconsistentRow {
        /// Index of the offending row.
        row: usize,
        /// Number of features in the row.
        got: usize,
        /// Number of features declared.
        expected: usize,
    },
    /// The number of labels does not match the number of rows.
    LabelMismatch {
        /// Number of rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
    /// A prediction was requested with the wrong number of features.
    FeatureCountMismatch {
        /// Number of features supplied.
        got: usize,
        /// Number of features the model was trained on.
        expected: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset has no rows"),
            MlError::InconsistentRow { row, got, expected } => {
                write!(f, "row {row} has {got} features, expected {expected}")
            }
            MlError::LabelMismatch { rows, labels } => {
                write!(f, "dataset has {rows} rows but {labels} labels")
            }
            MlError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            MlError::FeatureCountMismatch { got, expected } => {
                write!(f, "prediction input has {got} features, model expects {expected}")
            }
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(MlError::EmptyDataset.to_string(), "dataset has no rows");
        let err = MlError::InconsistentRow { row: 3, got: 2, expected: 5 };
        assert!(err.to_string().contains("row 3"));
        let err = MlError::InvalidParameter { name: "trees", reason: "must be > 0".into() };
        assert!(err.to_string().contains("trees"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<MlError>();
    }
}
