//! Workload classes matching Figure 4's x-axis groups.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The workload families evaluated in the paper (Figure 4, §6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Azure-internal production services ("Proprietary", P1–P13).
    Proprietary,
    /// Redis under YCSB A–F.
    Redis,
    /// VoltDB in-memory database.
    VoltDb,
    /// Spark / HiBench data processing (ML, web, etc.).
    Spark,
    /// GAP Benchmark Suite graph kernels (bc, bfs, cc, pr, sssp, tc) over
    /// several input graphs.
    Gapbs,
    /// TPC-H queries 1–22 on MySQL.
    TpcH,
    /// SPEC CPU 2017 (501.perlbench_r through 657.xz_s).
    SpecCpu2017,
    /// PARSEC shared-memory benchmarks (facesim, vips, …).
    Parsec,
    /// SPLASH2x HPC kernels (fft, …).
    Splash2x,
}

impl WorkloadClass {
    /// All classes, in the order the paper lists them.
    pub const ALL: [WorkloadClass; 9] = [
        WorkloadClass::Proprietary,
        WorkloadClass::Redis,
        WorkloadClass::VoltDb,
        WorkloadClass::Spark,
        WorkloadClass::Gapbs,
        WorkloadClass::TpcH,
        WorkloadClass::SpecCpu2017,
        WorkloadClass::Parsec,
        WorkloadClass::Splash2x,
    ];

    /// Number of workloads of this class in the 158-workload suite.
    ///
    /// The split mirrors the paper: 13 proprietary services, YCSB A–F on
    /// Redis, a handful of VoltDB and Spark configurations, 6 GAPBS kernels ×
    /// 5 graphs, 22 TPC-H queries, the SPEC CPU 2017 suite, and the
    /// PARSEC/SPLASH2x shared-memory benchmarks. The counts sum to 158.
    pub fn workload_count(self) -> usize {
        match self {
            WorkloadClass::Proprietary => 13,
            WorkloadClass::Redis => 6,
            WorkloadClass::VoltDb => 3,
            WorkloadClass::Spark => 8,
            WorkloadClass::Gapbs => 30,
            WorkloadClass::TpcH => 22,
            WorkloadClass::SpecCpu2017 => 43,
            WorkloadClass::Parsec => 16,
            WorkloadClass::Splash2x => 17,
        }
    }

    /// Short label used in workload names (e.g. `gapbs/bfs-road`).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Proprietary => "proprietary",
            WorkloadClass::Redis => "redis",
            WorkloadClass::VoltDb => "voltdb",
            WorkloadClass::Spark => "spark",
            WorkloadClass::Gapbs => "gapbs",
            WorkloadClass::TpcH => "tpch",
            WorkloadClass::SpecCpu2017 => "speccpu",
            WorkloadClass::Parsec => "parsec",
            WorkloadClass::Splash2x => "splash2x",
        }
    }

    /// Whether workloads of this class are typically NUMA-aware.
    ///
    /// The paper notes Azure's proprietary workloads are less impacted than
    /// the open-source set partly because they are NUMA-aware and include
    /// data-placement optimizations (§3.3).
    pub fn typically_numa_aware(self) -> bool {
        matches!(self, WorkloadClass::Proprietary | WorkloadClass::VoltDb)
    }
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_sum_to_158() {
        let total: usize = WorkloadClass::ALL.iter().map(|c| c.workload_count()).sum();
        assert_eq!(total, 158);
    }

    #[test]
    fn every_class_has_at_least_one_workload() {
        for class in WorkloadClass::ALL {
            assert!(class.workload_count() > 0, "{class} has no workloads");
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = WorkloadClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), WorkloadClass::ALL.len());
    }

    #[test]
    fn proprietary_workloads_are_numa_aware() {
        assert!(WorkloadClass::Proprietary.typically_numa_aware());
        assert!(!WorkloadClass::Gapbs.typically_numa_aware());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(WorkloadClass::TpcH.to_string(), "tpch");
    }
}
