//! Generation of the 158-workload suite.
//!
//! Real Azure traces and benchmark binaries are not available, so the suite
//! is generated from per-class parameter distributions calibrated to
//! reproduce the *shape* of the paper's sensitivity results (Figures 4/5):
//! roughly a quarter of workloads essentially insensitive, a fat middle, and
//! a fifth of workloads slowing down by more than 25% at a 182% latency
//! increase, with a handful of extreme outliers that exceed 100% at 222%.

use crate::class::WorkloadClass;
use crate::profile::{PerformanceMetric, WorkloadProfile};
use cxl_hw::units::Bytes;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};

/// Sensitivity bucket a workload is drawn from. The bucket determines the
/// target "total sensitivity" — the fractional slowdown per unit of relative
/// latency increase when fully backed by pool memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Bucket {
    /// Below 1% slowdown at a 182% latency increase.
    Insensitive,
    /// Between roughly 1% and 20% slowdown at 182%.
    Moderate,
    /// Between roughly 16% and 37% slowdown at 182%.
    High,
    /// Above ~37% at 182%; the top of this bucket exceeds 100% at 222%.
    Extreme,
}

impl Bucket {
    /// Maps a position `u` in `[0, 1)` within the bucket to a sensitivity.
    fn sensitivity(self, u: f64) -> f64 {
        match self {
            Bucket::Insensitive => 0.012 * u,
            // Skewed towards the low end so the 1-5% slowdown bin is well
            // populated, as in Figure 5's CDF.
            Bucket::Moderate => 0.012 + (0.20 - 0.012) * u.powf(1.7),
            Bucket::High => 0.20 + (0.45 - 0.20) * u,
            Bucket::Extreme => 0.45 + (1.00 - 0.45) * u,
        }
    }
}

/// Per-class bucket counts `(insensitive, moderate, high, extreme)`.
///
/// Every class has both insensitive and heavily-affected members (except
/// SPLASH2x, which the paper singles out as the exception), and the
/// proprietary services lean insensitive because they are NUMA-aware.
fn bucket_counts(class: WorkloadClass) -> (usize, usize, usize, usize) {
    match class {
        WorkloadClass::Proprietary => (6, 2, 5, 0),
        WorkloadClass::Redis => (2, 3, 1, 0),
        WorkloadClass::VoltDb => (1, 1, 1, 0),
        WorkloadClass::Spark => (2, 3, 2, 1),
        WorkloadClass::Gapbs => (3, 8, 13, 6),
        WorkloadClass::TpcH => (6, 9, 6, 1),
        WorkloadClass::SpecCpu2017 => (14, 15, 11, 3),
        WorkloadClass::Parsec => (5, 6, 4, 1),
        WorkloadClass::Splash2x => (4, 11, 2, 0),
    }
}

fn workload_names(class: WorkloadClass) -> Vec<String> {
    let label = class.label();
    let names: Vec<String> = match class {
        WorkloadClass::Proprietary => (1..=13).map(|i| format!("P{i}")).collect(),
        WorkloadClass::Redis => {
            ["a", "b", "c", "d", "e", "f"].iter().map(|w| format!("ycsb-{w}")).collect()
        }
        WorkloadClass::VoltDb => ["voter", "tpcc", "kv"].iter().map(|s| s.to_string()).collect(),
        WorkloadClass::Spark => {
            ["als", "bayes", "kmeans", "lr", "pagerank", "terasort", "wordcount", "svm"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        }
        WorkloadClass::Gapbs => {
            let kernels = ["bc", "bfs", "cc", "pr", "sssp", "tc"];
            let graphs = ["twitter", "web", "road", "kron", "urand"];
            kernels.iter().flat_map(|k| graphs.iter().map(move |g| format!("{k}-{g}"))).collect()
        }
        WorkloadClass::TpcH => (1..=22).map(|i| format!("q{i}")).collect(),
        WorkloadClass::SpecCpu2017 => [
            "500.perlbench_r",
            "502.gcc_r",
            "503.bwaves_r",
            "505.mcf_r",
            "507.cactuBSSN_r",
            "508.namd_r",
            "510.parest_r",
            "511.povray_r",
            "519.lbm_r",
            "520.omnetpp_r",
            "521.wrf_r",
            "523.xalancbmk_r",
            "525.x264_r",
            "526.blender_r",
            "527.cam4_r",
            "531.deepsjeng_r",
            "538.imagick_r",
            "541.leela_r",
            "544.nab_r",
            "548.exchange2_r",
            "549.fotonik3d_r",
            "554.roms_r",
            "557.xz_r",
            "600.perlbench_s",
            "602.gcc_s",
            "603.bwaves_s",
            "605.mcf_s",
            "607.cactuBSSN_s",
            "619.lbm_s",
            "620.omnetpp_s",
            "621.wrf_s",
            "623.xalancbmk_s",
            "625.x264_s",
            "627.cam4_s",
            "628.pop2_s",
            "631.deepsjeng_s",
            "638.imagick_s",
            "641.leela_s",
            "644.nab_s",
            "648.exchange2_s",
            "649.fotonik3d_s",
            "654.roms_s",
            "657.xz_s",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        WorkloadClass::Parsec => [
            "blackscholes",
            "bodytrack",
            "canneal",
            "dedup",
            "facesim",
            "ferret",
            "fluidanimate",
            "freqmine",
            "raytrace",
            "streamcluster",
            "swaptions",
            "vips",
            "x264",
            "netdedup",
            "netferret",
            "netstreamcluster",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        WorkloadClass::Splash2x => [
            "barnes",
            "cholesky",
            "fft",
            "fmm",
            "lu_cb",
            "lu_ncb",
            "ocean_cp",
            "ocean_ncp",
            "radiosity",
            "radix",
            "raytrace",
            "volrend",
            "water_nsquared",
            "water_spatial",
            "fft_large",
            "radix_large",
            "barnes_large",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    };
    names.into_iter().map(|n| format!("{label}/{n}")).collect()
}

fn footprint_range_gib(class: WorkloadClass) -> (u64, u64) {
    match class {
        WorkloadClass::Proprietary => (8, 128),
        WorkloadClass::Redis => (8, 32),
        WorkloadClass::VoltDb => (16, 64),
        WorkloadClass::Spark => (16, 64),
        WorkloadClass::Gapbs => (4, 64),
        WorkloadClass::TpcH => (8, 32),
        WorkloadClass::SpecCpu2017 => (1, 16),
        WorkloadClass::Parsec => (1, 8),
        WorkloadClass::Splash2x => (1, 8),
    }
}

fn metric_for(class: WorkloadClass) -> PerformanceMetric {
    match class {
        WorkloadClass::Redis | WorkloadClass::VoltDb => PerformanceMetric::TailLatency,
        WorkloadClass::Proprietary => PerformanceMetric::Throughput,
        _ => PerformanceMetric::Runtime,
    }
}

/// The full synthetic workload suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSuite {
    workloads: Vec<WorkloadProfile>,
    seed: u64,
}

impl WorkloadSuite {
    /// The seed used by [`WorkloadSuite::standard`].
    pub const STANDARD_SEED: u64 = 42;

    /// The suite used throughout the benchmarks and examples: 158 workloads
    /// generated with a fixed seed so every run sees the same profiles.
    pub fn standard() -> Self {
        Self::with_seed(Self::STANDARD_SEED)
    }

    /// Generates a suite with a custom seed (same class structure, different
    /// per-workload parameters).
    pub fn with_seed(seed: u64) -> Self {
        let mut workloads = Vec::with_capacity(158);
        for class in WorkloadClass::ALL {
            let names = workload_names(class);
            assert_eq!(
                names.len(),
                class.workload_count(),
                "name table for {class} disagrees with its workload count"
            );
            let (n_ins, n_mod, n_high, n_ext) = bucket_counts(class);
            assert_eq!(n_ins + n_mod + n_high + n_ext, names.len());

            // Interleave bucket membership across the class deterministically
            // so variants of the same kernel land in different buckets (the
            // paper notes within-class variability exceeds across-class
            // variability).
            let mut buckets: Vec<Bucket> = std::iter::empty()
                .chain(std::iter::repeat_n(Bucket::Insensitive, n_ins))
                .chain(std::iter::repeat_n(Bucket::Moderate, n_mod))
                .chain(std::iter::repeat_n(Bucket::High, n_high))
                .chain(std::iter::repeat_n(Bucket::Extreme, n_ext))
                .collect();
            let mut rng =
                Pcg64::seed_from_u64(seed ^ (class as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            buckets.shuffle(&mut rng);

            // Position of each workload within its bucket, to spread
            // sensitivities evenly across the bucket's range.
            let mut seen = [0usize; 4];
            let totals = [n_ins, n_mod, n_high, n_ext];

            for (name, bucket) in names.into_iter().zip(buckets) {
                let bucket_idx = match bucket {
                    Bucket::Insensitive => 0,
                    Bucket::Moderate => 1,
                    Bucket::High => 2,
                    Bucket::Extreme => 3,
                };
                let rank = seen[bucket_idx];
                seen[bucket_idx] += 1;
                let u = (rank as f64 + 0.5) / totals[bucket_idx].max(1) as f64;
                let target_sensitivity = bucket.sensitivity(u);
                workloads.push(Self::realize_profile(
                    name,
                    class,
                    bucket,
                    target_sensitivity,
                    &mut rng,
                ));
            }
        }
        WorkloadSuite { workloads, seed }
    }

    /// Builds a concrete profile whose [`WorkloadProfile::latency_sensitivity`]
    /// approximates `target`, with the remaining microarchitectural knobs
    /// drawn from class-appropriate ranges.
    fn realize_profile(
        name: String,
        class: WorkloadClass,
        bucket: Bucket,
        target: f64,
        rng: &mut Pcg64,
    ) -> WorkloadProfile {
        let numa_aware = class.typically_numa_aware();
        // Graph workloads chase pointers (low MLP); streaming/HPC codes
        // overlap many misses.
        let mlp = match class {
            WorkloadClass::Gapbs => rng.gen_range(1.0..2.0),
            WorkloadClass::Splash2x | WorkloadClass::Parsec => rng.gen_range(2.0..5.0),
            WorkloadClass::SpecCpu2017 => rng.gen_range(1.0..4.0),
            _ => rng.gen_range(1.5..3.5),
        };
        // Extreme workloads get no latency hiding at all, otherwise the
        // target sensitivity is unreachable.
        let mlp: f64 = if matches!(bucket, Bucket::Extreme) { 1.0 } else { mlp };
        let numa_factor = if numa_aware { 0.6 } else { 1.0 };
        // Keep the store-stall contribution at no more than half the target
        // sensitivity so the inversion below never clamps to zero and
        // insensitive workloads really are insensitive.
        let store_bound = rng.gen_range(0.01..0.10_f64).min(target / numa_factor / 0.3 * 0.5);

        // Invert latency_sensitivity() to find the DRAM-bound fraction that
        // realizes the target.
        let dram_bound = ((target / numa_factor - 0.3 * store_bound) * mlp.sqrt()).clamp(0.0, 0.95);
        let memory_bound = (dram_bound + rng.gen_range(0.03..0.20)).min(1.0);
        let llc_mpki = 0.5 + dram_bound * rng.gen_range(40.0..80.0);
        // Bandwidth demand scales with memory intensity; only the most
        // memory-hungry workloads exceed what a CXL ×8 link provides.
        let bandwidth_gbps = dram_bound * rng.gen_range(30.0..70.0);
        let hot_fraction = match class {
            WorkloadClass::Redis | WorkloadClass::VoltDb | WorkloadClass::Proprietary => {
                rng.gen_range(0.75..0.95)
            }
            WorkloadClass::Gapbs => rng.gen_range(0.30..0.60),
            _ => rng.gen_range(0.50..0.85),
        };
        let (lo, hi) = footprint_range_gib(class);
        let footprint = Bytes::from_gib(rng.gen_range(lo..=hi));

        let profile = WorkloadProfile {
            name,
            class,
            footprint,
            dram_bound,
            memory_bound,
            store_bound,
            mlp,
            bandwidth_gbps,
            llc_mpki,
            hot_fraction,
            numa_aware,
            metric: metric_for(class),
        };
        debug_assert_eq!(profile.validate(), Ok(()));
        profile
    }

    /// Number of workloads (always 158 for the standard class structure).
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// True when the suite is empty (never the case for generated suites).
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// The seed the suite was generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Iterates over all workloads.
    pub fn workloads(&self) -> impl Iterator<Item = &WorkloadProfile> {
        self.workloads.iter()
    }

    /// All workloads of a given class.
    pub fn by_class(&self, class: WorkloadClass) -> Vec<&WorkloadProfile> {
        self.workloads.iter().filter(|w| w.class == class).collect()
    }

    /// Looks up a workload by name.
    pub fn get(&self, name: &str) -> Option<&WorkloadProfile> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// The workload at a given index.
    pub fn at(&self, index: usize) -> Option<&WorkloadProfile> {
        self.workloads.get(index)
    }
}

impl Default for WorkloadSuite {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slowdown::SlowdownModel;
    use cxl_hw::latency::LatencyScenario;

    #[test]
    fn standard_suite_has_158_workloads_with_paper_class_counts() {
        let suite = WorkloadSuite::standard();
        assert_eq!(suite.len(), 158);
        for class in WorkloadClass::ALL {
            assert_eq!(suite.by_class(class).len(), class.workload_count(), "{class}");
        }
    }

    #[test]
    fn every_generated_profile_is_valid_and_uniquely_named() {
        let suite = WorkloadSuite::standard();
        let mut names: Vec<&str> = suite.workloads().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 158, "names must be unique");
        for w in suite.workloads() {
            assert_eq!(w.validate(), Ok(()), "{} is invalid", w.name);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(WorkloadSuite::with_seed(7), WorkloadSuite::with_seed(7));
        assert_ne!(
            WorkloadSuite::with_seed(7).workloads[0].dram_bound,
            WorkloadSuite::with_seed(8).workloads[0].dram_bound
        );
        assert_eq!(WorkloadSuite::default(), WorkloadSuite::standard());
    }

    #[test]
    fn lookup_by_name_and_index() {
        let suite = WorkloadSuite::standard();
        assert!(suite.get("proprietary/P1").is_some());
        assert!(suite.get("gapbs/bfs-twitter").is_some());
        assert!(suite.get("tpch/q22").is_some());
        assert!(suite.get("does-not-exist").is_none());
        assert!(suite.at(0).is_some());
        assert!(suite.at(158).is_none());
    }

    /// The headline calibration check: the slowdown distribution at 182% and
    /// 222% latency increases should match the shape reported in §3.3.
    #[test]
    fn slowdown_distribution_matches_paper_shape() {
        let suite = WorkloadSuite::standard();
        let model = SlowdownModel::default();

        let fraction = |scenario: LatencyScenario, pred: &dyn Fn(f64) -> bool| -> f64 {
            suite.workloads().filter(|w| pred(model.full_pool_slowdown(w, scenario))).count() as f64
                / suite.len() as f64
        };

        // 182%: ~26% under 1% slowdown, ~43% under 5%, ~21% above 25%.
        let under1 = fraction(LatencyScenario::Increase182, &|s| s < 0.01);
        let under5 = fraction(LatencyScenario::Increase182, &|s| s < 0.05);
        let over25 = fraction(LatencyScenario::Increase182, &|s| s > 0.25);
        assert!((0.18..=0.36).contains(&under1), "<1% bucket at 182%: {under1}");
        assert!((0.33..=0.55).contains(&under5), "<5% bucket at 182%: {under5}");
        assert!((0.13..=0.32).contains(&over25), ">25% bucket at 182%: {over25}");

        // 222%: ~23% under 1%, ~37% under 5%, ~37% above 25%.
        let under1_hi = fraction(LatencyScenario::Increase222, &|s| s < 0.01);
        let over25_hi = fraction(LatencyScenario::Increase222, &|s| s > 0.25);
        assert!((0.15..=0.33).contains(&under1_hi), "<1% bucket at 222%: {under1_hi}");
        assert!((0.28..=0.48).contains(&over25_hi), ">25% bucket at 222%: {over25_hi}");
        assert!(over25_hi > over25, "higher latency must hurt more workloads");

        // A few outliers exceed 100% slowdown at 222% (the paper reports three).
        let outliers = suite
            .workloads()
            .filter(|w| model.full_pool_slowdown(w, LatencyScenario::Increase222) > 1.0)
            .count();
        assert!((1..=8).contains(&outliers), "extreme outliers: {outliers}");
    }

    #[test]
    fn proprietary_workloads_are_less_impacted_than_average() {
        let suite = WorkloadSuite::standard();
        let model = SlowdownModel::default();
        let mean = |profiles: &[&WorkloadProfile]| -> f64 {
            profiles
                .iter()
                .map(|w| model.full_pool_slowdown(w, LatencyScenario::Increase182))
                .sum::<f64>()
                / profiles.len() as f64
        };
        let proprietary = mean(&suite.by_class(WorkloadClass::Proprietary));
        let all: Vec<&WorkloadProfile> = suite.workloads().collect();
        let overall = mean(&all);
        assert!(
            proprietary < overall,
            "proprietary ({proprietary:.3}) should be below overall ({overall:.3})"
        );
    }

    #[test]
    fn gapbs_within_class_variability_is_large() {
        // §3.3: within GAPBS even the same kernel reacts very differently.
        let suite = WorkloadSuite::standard();
        let model = SlowdownModel::default();
        let slowdowns: Vec<f64> = suite
            .by_class(WorkloadClass::Gapbs)
            .iter()
            .map(|w| model.full_pool_slowdown(w, LatencyScenario::Increase182))
            .collect();
        let min = slowdowns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = slowdowns.iter().cloned().fold(0.0_f64, f64::max);
        assert!(max - min > 0.20, "GAPBS spread should exceed 20 points: {min}..{max}");
    }

    #[test]
    fn every_class_except_splash_has_both_extremes() {
        // §3.3: every class has at least one workload below 5% and one above
        // 25% slowdown, except SPLASH2x.
        let suite = WorkloadSuite::standard();
        let model = SlowdownModel::default();
        for class in WorkloadClass::ALL {
            let slowdowns: Vec<f64> = suite
                .by_class(class)
                .iter()
                .map(|w| model.full_pool_slowdown(w, LatencyScenario::Increase182))
                .collect();
            let has_low = slowdowns.iter().any(|&s| s < 0.05);
            let has_high = slowdowns.iter().any(|&s| s > 0.25);
            assert!(has_low, "{class} should have an insensitive workload");
            if class != WorkloadClass::Splash2x {
                assert!(has_high, "{class} should have a heavily-affected workload");
            }
        }
    }
}
