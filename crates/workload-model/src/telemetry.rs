//! Core-PMU / TMA telemetry generation (Figure 12).
//!
//! Pond's latency-insensitivity model is trained on top-down-method (TMA)
//! hardware counters sampled by the hypervisor: memory-bound, DRAM-bound,
//! store-bound, backend-bound pipeline-slot fractions, plus LLC misses per
//! instruction, bandwidth utilization, and memory parallelism. This module
//! produces those counters for a synthetic workload, including realistic
//! sampling noise, and converts them to the feature vectors `pond-ml`
//! consumes.

use crate::profile::WorkloadProfile;
use rand::{Rng, SeedableRng};
use rand_pcg::Pcg64;
use serde::{Deserialize, Serialize};

/// A sampled set of TMA / PMU counters for one VM over one sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TmaCounters {
    /// Fraction of pipeline slots stalled on the backend (memory + core).
    pub backend_bound: f64,
    /// Fraction of slots stalled on any memory level.
    pub memory_bound: f64,
    /// Fraction of slots stalled specifically on DRAM.
    pub dram_bound: f64,
    /// Fraction of slots stalled on stores.
    pub store_bound: f64,
    /// Last-level-cache misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Observed memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Estimated memory-level parallelism (outstanding misses).
    pub memory_parallelism: f64,
}

impl TmaCounters {
    /// Feature names, in the order produced by [`TmaCounters::to_features`].
    pub const FEATURE_NAMES: [&'static str; 7] = [
        "backend_bound",
        "memory_bound",
        "dram_bound",
        "store_bound",
        "llc_mpki",
        "memory_bandwidth_gbps",
        "memory_parallelism",
    ];

    /// Converts the counters into an ML feature vector.
    pub fn to_features(&self) -> Vec<f64> {
        vec![
            self.backend_bound,
            self.memory_bound,
            self.dram_bound,
            self.store_bound,
            self.llc_mpki,
            self.memory_bandwidth_gbps,
            self.memory_parallelism,
        ]
    }

    /// Feature names as owned strings (convenience for building datasets).
    pub fn feature_names() -> Vec<String> {
        Self::FEATURE_NAMES.iter().map(|s| s.to_string()).collect()
    }
}

/// Generates PMU samples for workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySampler {
    /// Relative magnitude of multiplicative sampling noise (0.05 = ±5%).
    pub noise: f64,
}

impl Default for TelemetrySampler {
    fn default() -> Self {
        TelemetrySampler { noise: 0.05 }
    }
}

impl TelemetrySampler {
    /// Creates a sampler with a custom noise level.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or not finite.
    pub fn new(noise: f64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "noise must be finite and non-negative");
        TelemetrySampler { noise }
    }

    fn jitter(&self, value: f64, rng: &mut Pcg64) -> f64 {
        let factor = 1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * self.noise;
        (value * factor).max(0.0)
    }

    /// Samples one counter snapshot for a workload. Deterministic for a given
    /// `(workload, seed)` pair.
    pub fn sample(&self, profile: &WorkloadProfile, seed: u64) -> TmaCounters {
        let mut rng = Pcg64::seed_from_u64(seed ^ fxhash(&profile.name));
        let memory_bound = self.jitter(profile.memory_bound, &mut rng).min(1.0);
        let dram_bound = self.jitter(profile.dram_bound, &mut rng).min(memory_bound);
        let store_bound = self.jitter(profile.store_bound, &mut rng).min(1.0);
        let backend_bound = (memory_bound + self.jitter(0.08, &mut rng)).min(1.0);
        TmaCounters {
            backend_bound,
            memory_bound,
            dram_bound,
            store_bound,
            llc_mpki: self.jitter(profile.llc_mpki, &mut rng),
            memory_bandwidth_gbps: self.jitter(profile.bandwidth_gbps, &mut rng),
            memory_parallelism: self.jitter(profile.mlp, &mut rng).max(1.0),
        }
    }

    /// Samples `count` snapshots (e.g. one per sampling interval over a VM's
    /// lifetime) and returns their element-wise mean — the aggregate Pond's
    /// QoS monitor consumes.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn sample_mean(&self, profile: &WorkloadProfile, seed: u64, count: usize) -> TmaCounters {
        assert!(count > 0, "at least one sample is required");
        let samples: Vec<TmaCounters> =
            (0..count).map(|i| self.sample(profile, seed.wrapping_add(i as u64))).collect();
        let n = samples.len() as f64;
        TmaCounters {
            backend_bound: samples.iter().map(|s| s.backend_bound).sum::<f64>() / n,
            memory_bound: samples.iter().map(|s| s.memory_bound).sum::<f64>() / n,
            dram_bound: samples.iter().map(|s| s.dram_bound).sum::<f64>() / n,
            store_bound: samples.iter().map(|s| s.store_bound).sum::<f64>() / n,
            llc_mpki: samples.iter().map(|s| s.llc_mpki).sum::<f64>() / n,
            memory_bandwidth_gbps: samples.iter().map(|s| s.memory_bandwidth_gbps).sum::<f64>() / n,
            memory_parallelism: samples.iter().map(|s| s.memory_parallelism).sum::<f64>() / n,
        }
    }
}

/// A tiny deterministic string hash (FNV-1a) so per-workload sampling streams
/// differ without pulling in a hashing crate.
fn fxhash(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::WorkloadSuite;

    #[test]
    fn sampled_counters_track_the_profile() {
        let suite = WorkloadSuite::standard();
        let sampler = TelemetrySampler::default();
        for w in suite.workloads() {
            let c = sampler.sample(w, 1);
            assert!(c.dram_bound <= c.memory_bound + 1e-12, "{}", w.name);
            assert!(c.memory_bound <= 1.0 && c.backend_bound <= 1.0);
            assert!((c.dram_bound - w.dram_bound).abs() <= w.dram_bound * 0.06 + 1e-9);
            assert!(c.memory_parallelism >= 1.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed_and_differs_across_workloads() {
        let suite = WorkloadSuite::standard();
        let sampler = TelemetrySampler::default();
        let a = suite.at(0).unwrap();
        let b = suite.at(1).unwrap();
        assert_eq!(sampler.sample(a, 5), sampler.sample(a, 5));
        assert_ne!(sampler.sample(a, 5), sampler.sample(b, 5));
        assert_ne!(sampler.sample(a, 5), sampler.sample(a, 6));
    }

    #[test]
    fn feature_vector_matches_names() {
        let suite = WorkloadSuite::standard();
        let sampler = TelemetrySampler::default();
        let c = sampler.sample(suite.at(0).unwrap(), 0);
        assert_eq!(c.to_features().len(), TmaCounters::FEATURE_NAMES.len());
        assert_eq!(TmaCounters::feature_names().len(), 7);
    }

    #[test]
    fn sample_mean_reduces_noise() {
        let suite = WorkloadSuite::standard();
        let w = suite.get("gapbs/pr-twitter").unwrap();
        let sampler = TelemetrySampler::new(0.2);
        let mean = sampler.sample_mean(w, 0, 64);
        // The mean of many noisy samples should be closer to the true value
        // than the worst-case single-sample error bound.
        assert!((mean.dram_bound - w.dram_bound).abs() < w.dram_bound * 0.1 + 1e-9);
    }

    #[test]
    fn zero_noise_reproduces_the_profile_exactly() {
        let suite = WorkloadSuite::standard();
        let w = suite.at(10).unwrap();
        let c = TelemetrySampler::new(0.0).sample(w, 3);
        assert!((c.dram_bound - w.dram_bound).abs() < 1e-12);
        assert!((c.llc_mpki - w.llc_mpki).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn sample_mean_requires_samples() {
        let suite = WorkloadSuite::standard();
        let _ = TelemetrySampler::default().sample_mean(suite.at(0).unwrap(), 0, 0);
    }

    #[test]
    #[should_panic(expected = "noise must be finite")]
    fn negative_noise_rejected() {
        let _ = TelemetrySampler::new(-0.1);
    }
}
