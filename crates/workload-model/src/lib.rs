//! # workload-model
//!
//! A synthetic stand-in for the 158 cloud workloads the Pond paper
//! characterizes (§3.3, §6.1): in-memory databases and KV-stores (Redis,
//! VoltDB, TPC-H on MySQL), data and graph processing (Spark, GAPBS), HPC
//! (SPLASH2x), CPU and shared-memory benchmarks (SPEC CPU 2017, PARSEC), and
//! Azure-internal proprietary services.
//!
//! We cannot run the real binaries, so each workload is represented by a
//! [`profile::WorkloadProfile`] describing its memory behaviour
//! (DRAM-boundedness, memory-level parallelism, bandwidth demand, locality,
//! NUMA awareness). From that profile the crate derives:
//!
//! * the **slowdown** the workload suffers when some fraction of its accesses
//!   are served from CXL pool memory at a higher latency
//!   ([`slowdown`], Figures 4 and 5),
//! * the **PMU/TMA counters** the hypervisor would sample for the workload
//!   ([`telemetry`], Figure 12), which feed Pond's latency-insensitivity
//!   model, and
//! * the slowdown under **zNUMA spill** — how performance degrades as the
//!   untouched-memory prediction is increasingly wrong ([`spill`],
//!   Figure 16).
//!
//! The per-class parameter distributions are calibrated so that the suite's
//! aggregate slowdown distribution matches the shape the paper reports (26%
//! of workloads under 1% slowdown and 21% above 25% at a 182% latency
//! increase; heavier tails at 222%).
//!
//! # Example
//!
//! ```
//! use workload_model::suite::WorkloadSuite;
//! use workload_model::slowdown::SlowdownModel;
//! use cxl_hw::latency::LatencyScenario;
//!
//! let suite = WorkloadSuite::standard();
//! assert_eq!(suite.len(), 158);
//! let model = SlowdownModel::default();
//! let w = suite.workloads().next().unwrap();
//! let s = model.full_pool_slowdown(w, LatencyScenario::Increase182);
//! assert!(s >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod class;
pub mod profile;
pub mod slowdown;
pub mod spill;
pub mod suite;
pub mod telemetry;

pub use class::WorkloadClass;
pub use profile::WorkloadProfile;
pub use slowdown::SlowdownModel;
pub use suite::WorkloadSuite;
pub use telemetry::TmaCounters;
