//! Slowdown under zNUMA spill (Figure 16) and zNUMA traffic (Figure 15).
//!
//! When the untouched-memory prediction is correct, the guest never allocates
//! on its zNUMA node and performance matches all-local memory. When the
//! prediction is too optimistic, part of the working set "spills" onto the
//! zNUMA node (pool memory) and performance degrades with the spilled
//! fraction. The guest OS fills the local node first, so the spilled pages
//! are the ones allocated last — under an access-skewed working set those
//! tend to be the colder pages, which softens small spills but cannot help
//! once most of the footprint lives on the pool.

use crate::profile::WorkloadProfile;
use crate::slowdown::SlowdownModel;
use cxl_hw::latency::LatencyScenario;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};

/// The zNUMA spill sizes evaluated in Figure 16, as fractions of the
/// workload's memory footprint allocated on pool memory.
pub const FIGURE16_SPILL_FRACTIONS: [f64; 7] = [0.0, 0.10, 0.20, 0.40, 0.60, 0.75, 1.00];

/// One measurement point of the spill sensitivity study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpillPoint {
    /// Fraction of the footprint allocated on pool memory (spilled).
    pub spill_fraction: f64,
    /// Fraction of memory *accesses* that hit the pool.
    pub pool_access_fraction: f64,
    /// Resulting slowdown relative to all-local memory.
    pub slowdown: f64,
}

/// The spill model: converts "fraction of footprint on the pool" into
/// "fraction of accesses on the pool" using the workload's access skew, then
/// applies the [`SlowdownModel`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SpillModel {
    /// The underlying latency/bandwidth slowdown model.
    pub slowdown: SlowdownModel,
}

impl SpillModel {
    /// Creates a spill model over a specific slowdown model.
    pub fn new(slowdown: SlowdownModel) -> Self {
        SpillModel { slowdown }
    }

    /// Fraction of memory accesses that land on the pool when `spill_fraction`
    /// of the footprint is allocated there.
    ///
    /// The guest fills the local vNUMA node first, so the spilled portion is
    /// the coldest `spill_fraction` of pages. With access skew
    /// `hot_fraction` (share of accesses going to the hottest 20% of pages),
    /// the coldest pages attract disproportionately few accesses; the
    /// exponent grows with the skew.
    ///
    /// # Panics
    ///
    /// Panics if `spill_fraction` is outside `[0, 1]`.
    pub fn pool_access_fraction(&self, profile: &WorkloadProfile, spill_fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&spill_fraction), "spill fraction must be in [0, 1]");
        if spill_fraction == 0.0 {
            return 0.0;
        }
        let skew_exponent = 1.0 + 0.5 * profile.hot_fraction;
        spill_fraction.powf(skew_exponent)
    }

    /// The spill fraction a VM experiences when `touched` bytes of working
    /// set must fit into `local` bytes of NUMA-local memory: the share of the
    /// touched footprint that overflows onto the zNUMA (pool) node, clamped
    /// to `[0, 1]`. Zero touched memory spills nothing.
    ///
    /// Both the event-driven cluster simulator and the control-plane fleet
    /// replay derive their ground-truth QoS outcome through this one
    /// function, so the two paths cannot disagree on what "spilled" means.
    pub fn spill_fraction(touched: Bytes, local: Bytes) -> f64 {
        if touched.is_zero() {
            return 0.0;
        }
        let spilled = touched.saturating_sub(local);
        (spilled.as_u64() as f64 / touched.as_u64() as f64).min(1.0)
    }

    /// Slowdown when `spill_fraction` of the footprint is on pool memory.
    pub fn spill_slowdown(
        &self,
        profile: &WorkloadProfile,
        scenario: LatencyScenario,
        spill_fraction: f64,
    ) -> f64 {
        let access_fraction = self.pool_access_fraction(profile, spill_fraction);
        self.slowdown.slowdown(profile, scenario.multiplier(), access_fraction)
    }

    /// The full Figure 16 sweep for one workload.
    pub fn figure16_sweep(
        &self,
        profile: &WorkloadProfile,
        scenario: LatencyScenario,
    ) -> Vec<SpillPoint> {
        FIGURE16_SPILL_FRACTIONS
            .iter()
            .map(|&spill_fraction| SpillPoint {
                spill_fraction,
                pool_access_fraction: self.pool_access_fraction(profile, spill_fraction),
                slowdown: self.spill_slowdown(profile, scenario, spill_fraction),
            })
            .collect()
    }

    /// Fraction of accesses that reach a *correctly sized* zNUMA node
    /// (Figure 15): the working set fits in local memory, and only guest-OS
    /// metadata allocated per-node touches the zNUMA node. The paper measures
    /// 0.06%–0.38% across four production workloads; we model it as a small
    /// constant plus a term that shrinks with access skew.
    pub fn znuma_traffic_fraction(&self, profile: &WorkloadProfile) -> f64 {
        0.0005 + 0.004 * (1.0 - profile.hot_fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::WorkloadSuite;
    use proptest::prelude::*;

    fn suite() -> WorkloadSuite {
        WorkloadSuite::standard()
    }

    #[test]
    fn zero_spill_means_zero_slowdown() {
        let model = SpillModel::default();
        for w in suite().workloads() {
            assert_eq!(model.spill_slowdown(w, LatencyScenario::Increase182, 0.0), 0.0);
        }
    }

    #[test]
    fn full_spill_equals_full_pool_slowdown() {
        let model = SpillModel::default();
        let sd = SlowdownModel::default();
        for w in suite().workloads().take(20) {
            let spill = model.spill_slowdown(w, LatencyScenario::Increase182, 1.0);
            let full = sd.full_pool_slowdown(w, LatencyScenario::Increase182);
            assert!((spill - full).abs() < 1e-12, "{}", w.name);
        }
    }

    #[test]
    fn slowdown_is_monotone_in_spill_fraction() {
        let model = SpillModel::default();
        for w in suite().workloads() {
            let sweep = model.figure16_sweep(w, LatencyScenario::Increase182);
            assert_eq!(sweep.len(), FIGURE16_SPILL_FRACTIONS.len());
            for pair in sweep.windows(2) {
                assert!(
                    pair[1].slowdown >= pair[0].slowdown - 1e-12,
                    "{} slowdown must grow with spill",
                    w.name
                );
            }
        }
    }

    #[test]
    fn access_skew_softens_small_spills() {
        let model = SpillModel::default();
        // A 10% spill should always produce well under 10% of accesses on the
        // pool because the guest spills the coldest pages.
        for w in suite().workloads() {
            let f = model.pool_access_fraction(w, 0.10);
            assert!(f < 0.10, "{}: {f}", w.name);
        }
    }

    #[test]
    fn severe_spills_produce_figure16_scale_slowdowns() {
        // Figure 16: some workloads slow down by 30-35% with 20-75% spilled
        // and up to ~50% when fully on the pool.
        let model = SpillModel::default();
        let worst_mid = suite()
            .workloads()
            .map(|w| model.spill_slowdown(w, LatencyScenario::Increase182, 0.75))
            .fold(0.0_f64, f64::max);
        assert!(worst_mid > 0.25, "worst 75%-spill slowdown {worst_mid}");
        let worst_full = suite()
            .workloads()
            .map(|w| model.spill_slowdown(w, LatencyScenario::Increase182, 1.0))
            .fold(0.0_f64, f64::max);
        assert!(worst_full > worst_mid);
    }

    #[test]
    fn znuma_traffic_matches_the_production_observation() {
        // Figure 15: 0.06%-0.38% of accesses reach a correctly sized zNUMA.
        let model = SpillModel::default();
        for w in suite().workloads() {
            let f = model.znuma_traffic_fraction(w);
            assert!((0.0004..=0.005).contains(&f), "{}: {f}", w.name);
        }
    }

    #[test]
    fn spill_fraction_from_bytes() {
        let gib = Bytes::from_gib;
        assert_eq!(SpillModel::spill_fraction(Bytes::ZERO, Bytes::ZERO), 0.0);
        assert_eq!(SpillModel::spill_fraction(gib(8), gib(8)), 0.0);
        assert_eq!(SpillModel::spill_fraction(gib(8), gib(16)), 0.0);
        assert!((SpillModel::spill_fraction(gib(8), gib(6)) - 0.25).abs() < 1e-12);
        assert_eq!(SpillModel::spill_fraction(gib(8), Bytes::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "spill fraction")]
    fn invalid_spill_fraction_rejected() {
        let model = SpillModel::default();
        let suite = suite();
        let _ = model.pool_access_fraction(suite.at(0).unwrap(), 1.5);
    }

    proptest! {
        /// Pool access fraction is within [0, spill_fraction] for every workload.
        #[test]
        fn access_fraction_bounded(idx in 0usize..158, spill in 0.0f64..1.0) {
            let suite = WorkloadSuite::standard();
            let w = suite.at(idx).unwrap();
            let model = SpillModel::default();
            let f = model.pool_access_fraction(w, spill);
            prop_assert!(f >= 0.0);
            prop_assert!(f <= spill + 1e-12);
        }
    }
}
