//! The analytic slowdown model (Figures 4 and 5).
//!
//! The paper measures slowdowns by emulating CXL latency with a remote NUMA
//! node; we model the same quantity analytically: the extra stall time a
//! workload accrues when a fraction of its memory accesses are served at a
//! higher latency (and possibly lower bandwidth), normalized to the all-local
//! baseline.

use crate::profile::WorkloadProfile;
use cxl_hw::latency::LatencyScenario;
use serde::{Deserialize, Serialize};

/// Bucketed summary of a suite's slowdown distribution, mirroring how §3.3
/// reports results.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlowdownBuckets {
    /// Fraction of workloads with less than 1% slowdown.
    pub under_1pct: f64,
    /// Fraction with slowdown in `[1%, 5%)`.
    pub between_1_and_5pct: f64,
    /// Fraction with slowdown in `[5%, 25%]`.
    pub between_5_and_25pct: f64,
    /// Fraction with more than 25% slowdown.
    pub over_25pct: f64,
}

/// The slowdown model and its bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowdownModel {
    /// Bandwidth a workload can draw from the CXL pool, in GB/s (the paper's
    /// testbed provides ~30 GB/s, three quarters of a ×8 link).
    pub cxl_bandwidth_gbps: f64,
    /// Bandwidth available from NUMA-local DRAM, in GB/s (~80 GB/s measured).
    pub local_bandwidth_gbps: f64,
}

impl Default for SlowdownModel {
    fn default() -> Self {
        SlowdownModel { cxl_bandwidth_gbps: 30.0, local_bandwidth_gbps: 80.0 }
    }
}

impl SlowdownModel {
    /// Fractional slowdown (0.25 == 25% slower than all-local) for a workload
    /// when `pool_access_fraction` of its memory accesses hit pool memory
    /// whose latency is `latency_ratio` × the local latency.
    ///
    /// The latency term scales with the workload's intrinsic sensitivity and
    /// the share of accesses that pay the extra latency. The bandwidth term
    /// applies only to the pool-bound share of traffic and only when the
    /// workload's demand exceeds what the CXL link can deliver.
    ///
    /// # Panics
    ///
    /// Panics if `latency_ratio < 1` or `pool_access_fraction` is outside `[0, 1]`.
    pub fn slowdown(
        &self,
        profile: &WorkloadProfile,
        latency_ratio: f64,
        pool_access_fraction: f64,
    ) -> f64 {
        assert!(latency_ratio >= 1.0, "pool latency cannot be below local latency");
        assert!(
            (0.0..=1.0).contains(&pool_access_fraction),
            "pool access fraction must be in [0, 1]"
        );
        let latency_term =
            profile.latency_sensitivity() * (latency_ratio - 1.0) * pool_access_fraction;
        let bandwidth_term =
            profile.bandwidth_sensitivity(self.cxl_bandwidth_gbps) * pool_access_fraction * 0.3;
        latency_term + bandwidth_term
    }

    /// Slowdown with the entire working set on pool memory under one of the
    /// paper's two emulated scenarios — the quantity plotted in Figure 4.
    pub fn full_pool_slowdown(&self, profile: &WorkloadProfile, scenario: LatencyScenario) -> f64 {
        self.slowdown(profile, scenario.multiplier(), 1.0)
    }

    /// Whether the workload stays within a performance degradation margin
    /// (PDM, e.g. 0.05 for 5%) when fully backed by pool memory — the label
    /// used to train the latency-insensitivity model (Figure 12).
    pub fn is_latency_insensitive(
        &self,
        profile: &WorkloadProfile,
        scenario: LatencyScenario,
        pdm: f64,
    ) -> bool {
        self.full_pool_slowdown(profile, scenario) <= pdm
    }

    /// Summarizes a set of slowdowns into the buckets §3.3 reports.
    pub fn bucketize(slowdowns: &[f64]) -> SlowdownBuckets {
        if slowdowns.is_empty() {
            return SlowdownBuckets::default();
        }
        let n = slowdowns.len() as f64;
        let count =
            |pred: &dyn Fn(f64) -> bool| slowdowns.iter().filter(|&&s| pred(s)).count() as f64 / n;
        SlowdownBuckets {
            under_1pct: count(&|s| s < 0.01),
            between_1_and_5pct: count(&|s| (0.01..0.05).contains(&s)),
            between_5_and_25pct: count(&|s| (0.05..=0.25).contains(&s)),
            over_25pct: count(&|s| s > 0.25),
        }
    }

    /// Empirical CDF of a set of slowdowns at the given evaluation points —
    /// the series plotted in Figure 5.
    pub fn cdf(slowdowns: &[f64], points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&p| {
                let frac = if slowdowns.is_empty() {
                    0.0
                } else {
                    slowdowns.iter().filter(|&&s| s <= p).count() as f64 / slowdowns.len() as f64
                };
                (p, frac)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::WorkloadClass;
    use crate::profile::PerformanceMetric;
    use cxl_hw::units::Bytes;
    use proptest::prelude::*;

    fn profile(dram_bound: f64, mlp: f64, bandwidth: f64) -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            class: WorkloadClass::SpecCpu2017,
            footprint: Bytes::from_gib(8),
            dram_bound,
            memory_bound: (dram_bound + 0.1).min(1.0),
            store_bound: 0.02,
            mlp,
            bandwidth_gbps: bandwidth,
            llc_mpki: 10.0,
            hot_fraction: 0.7,
            numa_aware: false,
            metric: PerformanceMetric::Runtime,
        }
    }

    #[test]
    fn no_pool_accesses_means_no_slowdown() {
        let model = SlowdownModel::default();
        let p = profile(0.5, 1.0, 50.0);
        assert_eq!(model.slowdown(&p, 1.82, 0.0), 0.0);
    }

    #[test]
    fn slowdown_grows_with_latency_and_pool_fraction() {
        let model = SlowdownModel::default();
        let p = profile(0.3, 1.0, 10.0);
        let s_half = model.slowdown(&p, 1.82, 0.5);
        let s_full = model.slowdown(&p, 1.82, 1.0);
        let s_full_hi = model.slowdown(&p, 2.22, 1.0);
        assert!(s_half < s_full);
        assert!(s_full < s_full_hi);
    }

    #[test]
    fn insensitive_profile_stays_within_pdm() {
        let model = SlowdownModel::default();
        let quiet = profile(0.005, 4.0, 2.0);
        assert!(model.is_latency_insensitive(&quiet, LatencyScenario::Increase182, 0.01));
        let loud = profile(0.6, 1.0, 50.0);
        assert!(!model.is_latency_insensitive(&loud, LatencyScenario::Increase182, 0.05));
    }

    #[test]
    fn bandwidth_bound_workloads_pay_an_extra_penalty() {
        let model = SlowdownModel::default();
        let light = profile(0.3, 1.0, 10.0);
        let heavy = profile(0.3, 1.0, 70.0);
        assert!(
            model.full_pool_slowdown(&heavy, LatencyScenario::Increase182)
                > model.full_pool_slowdown(&light, LatencyScenario::Increase182)
        );
    }

    #[test]
    fn bucketize_partitions_the_distribution() {
        let slowdowns = [0.005, 0.02, 0.10, 0.30, 0.50];
        let b = SlowdownModel::bucketize(&slowdowns);
        assert!((b.under_1pct - 0.2).abs() < 1e-12);
        assert!((b.between_1_and_5pct - 0.2).abs() < 1e-12);
        assert!((b.between_5_and_25pct - 0.2).abs() < 1e-12);
        assert!((b.over_25pct - 0.4).abs() < 1e-12);
        let total = b.under_1pct + b.between_1_and_5pct + b.between_5_and_25pct + b.over_25pct;
        assert!((total - 1.0).abs() < 1e-12);
        let empty = SlowdownModel::bucketize(&[]);
        assert_eq!(empty.under_1pct, 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_reaches_one() {
        let slowdowns = [0.01, 0.02, 0.10, 0.40];
        let cdf = SlowdownModel::cdf(&slowdowns, &[0.0, 0.05, 0.25, 0.50, 1.0]);
        assert_eq!(cdf.len(), 5);
        for pair in cdf.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    #[should_panic(expected = "pool latency cannot be below local latency")]
    fn ratio_below_one_rejected() {
        let model = SlowdownModel::default();
        let _ = model.slowdown(&profile(0.1, 1.0, 1.0), 0.9, 0.5);
    }

    #[test]
    #[should_panic(expected = "pool access fraction")]
    fn pool_fraction_out_of_range_rejected() {
        let model = SlowdownModel::default();
        let _ = model.slowdown(&profile(0.1, 1.0, 1.0), 1.5, 1.5);
    }

    proptest! {
        /// Slowdown is non-negative and monotone in the pool-access fraction.
        #[test]
        fn monotone_in_pool_fraction(
            dram in 0.0f64..0.9,
            mlp in 1.0f64..6.0,
            bw in 0.0f64..80.0,
            f1 in 0.0f64..1.0,
            f2 in 0.0f64..1.0,
        ) {
            let model = SlowdownModel::default();
            let p = profile(dram, mlp, bw);
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let s_lo = model.slowdown(&p, 1.82, lo);
            let s_hi = model.slowdown(&p, 1.82, hi);
            prop_assert!(s_lo >= 0.0);
            prop_assert!(s_hi + 1e-12 >= s_lo);
        }
    }
}
