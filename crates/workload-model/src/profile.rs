//! Per-workload memory-behaviour profiles.
//!
//! A profile captures the handful of microarchitectural properties that
//! determine how a workload reacts to extra memory latency: how often the
//! pipeline stalls on DRAM, how much memory-level parallelism hides that
//! latency, how much bandwidth it draws, and how skewed its access pattern is
//! across its footprint.

use crate::class::WorkloadClass;
use cxl_hw::units::Bytes;
use serde::{Deserialize, Serialize};

/// What "performance" means for a workload (job runtime, throughput, or tail
/// latency — §6.1). Slowdowns are always expressed as a ratio to the
/// all-local baseline, whichever metric underlies them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerformanceMetric {
    /// Wall-clock job completion time (lower is better).
    Runtime,
    /// Sustained operations per second (higher is better).
    Throughput,
    /// 99th-percentile request latency (lower is better).
    TailLatency,
}

/// The memory-behaviour profile of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Unique name, e.g. `gapbs/bfs-twitter` or `speccpu/519.lbm_r`.
    pub name: String,
    /// The workload's class.
    pub class: WorkloadClass,
    /// Memory footprint (the working set the guest actually touches).
    pub footprint: Bytes,
    /// Fraction of pipeline slots stalled specifically on DRAM accesses
    /// (the TMA "DRAM-bound" metric), in `[0, 1]`.
    pub dram_bound: f64,
    /// Fraction of pipeline slots stalled on any memory level (TMA
    /// "memory-bound"), always at least `dram_bound`.
    pub memory_bound: f64,
    /// Fraction of slots stalled on stores (TMA "store-bound").
    pub store_bound: f64,
    /// Average memory-level parallelism: how many outstanding misses overlap.
    /// Higher MLP hides added latency better.
    pub mlp: f64,
    /// Sustained memory bandwidth demand in GB/s.
    pub bandwidth_gbps: f64,
    /// Last-level-cache misses per kilo-instruction.
    pub llc_mpki: f64,
    /// Fraction of accesses that hit the hottest 20% of the footprint
    /// (access skew; high values mean a small hot set).
    pub hot_fraction: f64,
    /// Whether the workload performs NUMA-aware placement of its own data.
    pub numa_aware: bool,
    /// The metric its performance is reported in.
    pub metric: PerformanceMetric,
}

impl WorkloadProfile {
    /// Validates the profile's invariants, returning a description of the
    /// first violation if any.
    ///
    /// The suite generator and tests use this to guarantee that every
    /// generated profile is internally consistent.
    pub fn validate(&self) -> Result<(), String> {
        let unit = |v: f64, name: &str| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{name} must be in [0, 1], got {v}"))
            }
        };
        unit(self.dram_bound, "dram_bound")?;
        unit(self.memory_bound, "memory_bound")?;
        unit(self.store_bound, "store_bound")?;
        unit(self.hot_fraction, "hot_fraction")?;
        if self.memory_bound + 1e-9 < self.dram_bound {
            return Err(format!(
                "memory_bound ({}) must be at least dram_bound ({})",
                self.memory_bound, self.dram_bound
            ));
        }
        if self.mlp < 1.0 {
            return Err(format!("mlp must be >= 1, got {}", self.mlp));
        }
        if self.bandwidth_gbps < 0.0 || !self.bandwidth_gbps.is_finite() {
            return Err(format!(
                "bandwidth_gbps must be non-negative, got {}",
                self.bandwidth_gbps
            ));
        }
        if self.llc_mpki < 0.0 || !self.llc_mpki.is_finite() {
            return Err(format!("llc_mpki must be non-negative, got {}", self.llc_mpki));
        }
        if self.footprint.is_zero() {
            return Err("footprint must be non-zero".to_string());
        }
        Ok(())
    }

    /// The workload's intrinsic sensitivity to added memory latency: the
    /// fractional slowdown it would suffer per unit of *relative* latency
    /// increase with its entire working set on the slower memory.
    ///
    /// The dominant term is DRAM-boundedness divided by MLP (overlapping
    /// misses hide part of the extra latency); store stalls contribute a
    /// smaller share (write-backs are off the critical path more often), and
    /// NUMA-aware workloads shave a further fraction because they keep their
    /// hottest structures local by design.
    pub fn latency_sensitivity(&self) -> f64 {
        let mlp_hiding = self.mlp.max(1.0).sqrt();
        let base = self.dram_bound / mlp_hiding + 0.3 * self.store_bound;
        if self.numa_aware {
            base * 0.6
        } else {
            base
        }
    }

    /// Additional sensitivity from bandwidth contention: a ×8 CXL link
    /// provides roughly `cxl_bandwidth_gbps` (about 30 GB/s in the paper's
    /// testbed, 3/4 of a ×8 link) versus ~80 GB/s NUMA-local. Workloads that
    /// demand more than the link can supply stall further.
    pub fn bandwidth_sensitivity(&self, cxl_bandwidth_gbps: f64) -> f64 {
        if self.bandwidth_gbps <= cxl_bandwidth_gbps {
            0.0
        } else {
            // Fractional throughput loss if fully bandwidth-limited.
            (self.bandwidth_gbps - cxl_bandwidth_gbps) / self.bandwidth_gbps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test/wl".into(),
            class: WorkloadClass::SpecCpu2017,
            footprint: Bytes::from_gib(8),
            dram_bound: 0.2,
            memory_bound: 0.35,
            store_bound: 0.05,
            mlp: 2.0,
            bandwidth_gbps: 10.0,
            llc_mpki: 5.0,
            hot_fraction: 0.8,
            numa_aware: false,
            metric: PerformanceMetric::Runtime,
        }
    }

    #[test]
    fn valid_profile_passes_validation() {
        assert_eq!(base_profile().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut p = base_profile();
        p.dram_bound = 1.5;
        assert!(p.validate().is_err());

        let mut p = base_profile();
        p.memory_bound = 0.1; // below dram_bound
        assert!(p.validate().unwrap_err().contains("memory_bound"));

        let mut p = base_profile();
        p.mlp = 0.5;
        assert!(p.validate().unwrap_err().contains("mlp"));

        let mut p = base_profile();
        p.footprint = Bytes::ZERO;
        assert!(p.validate().unwrap_err().contains("footprint"));

        let mut p = base_profile();
        p.bandwidth_gbps = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn latency_sensitivity_increases_with_dram_boundedness() {
        let mut low = base_profile();
        low.dram_bound = 0.05;
        let mut high = base_profile();
        high.dram_bound = 0.5;
        high.memory_bound = 0.6;
        assert!(high.latency_sensitivity() > low.latency_sensitivity());
    }

    #[test]
    fn mlp_hides_latency() {
        let mut serial = base_profile();
        serial.mlp = 1.0;
        let mut parallel = base_profile();
        parallel.mlp = 8.0;
        assert!(parallel.latency_sensitivity() < serial.latency_sensitivity());
    }

    #[test]
    fn numa_awareness_reduces_sensitivity() {
        let mut aware = base_profile();
        aware.numa_aware = true;
        assert!(aware.latency_sensitivity() < base_profile().latency_sensitivity());
    }

    #[test]
    fn bandwidth_sensitivity_kicks_in_above_the_link_capacity() {
        let mut light = base_profile();
        light.bandwidth_gbps = 10.0;
        assert_eq!(light.bandwidth_sensitivity(30.0), 0.0);

        let mut heavy = base_profile();
        heavy.bandwidth_gbps = 60.0;
        let s = heavy.bandwidth_sensitivity(30.0);
        assert!(s > 0.0 && s < 1.0);
    }
}
